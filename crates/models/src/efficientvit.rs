//! EfficientViT-B1 inventory (Cai et al., ICCV 2023) at 512×512 — the
//! paper's second ADE20K benchmark.
//!
//! Reconstructed from the published architecture: a convolutional stem,
//! MBConv stages (expand 4), and EfficientViT modules whose lightweight
//! multi-scale linear attention uses ReLU linear attention (per-head dim
//! 16) plus depthwise aggregation convs, with widths
//! [16, 32, 64, 128, 256] and depths [1, 2, 3, 3, 4], followed by a
//! segmentation head at 1/8 resolution.

use apsq_dataflow::{LayerShape, Workload};

/// Appends one MBConv block (1×1 expand ×4, 3×3 depthwise, 1×1 project).
fn mbconv(
    layers: &mut Vec<LayerShape>,
    tag: &str,
    h: usize,
    c_in: usize,
    c_out: usize,
    stride: usize,
) {
    let mid = 4 * c_in;
    let h_out = h / stride;
    let n_out = h_out * h_out;
    layers.push(LayerShape::gemm(format!("{tag}_expand"), h * h, c_in, mid));
    layers.push(LayerShape::conv(
        format!("{tag}_dw"),
        h_out,
        h_out,
        1,
        mid,
        3,
        stride,
    ));
    layers.push(LayerShape::gemm(
        format!("{tag}_project"),
        n_out,
        mid,
        c_out,
    ));
}

/// Appends one EfficientViT module: lite multi-scale linear attention
/// (QKV 1×1, multi-scale 5×5 depthwise aggregation, ReLU linear attention
/// `(Q·(KᵀV))`, output projection) followed by an MBConv FFN.
fn evit_module(layers: &mut Vec<LayerShape>, tag: &str, h: usize, c: usize) {
    let n = h * h;
    let d_head = 16;
    let heads = c / d_head;
    // QKV projection (1×1 conv).
    layers.push(LayerShape::gemm(format!("{tag}_qkv"), n, c, 3 * c));
    // Multi-scale aggregation: 5×5 depthwise over the 3C qkv channels.
    layers.push(LayerShape::conv(format!("{tag}_agg"), h, h, 1, 3 * c, 5, 1));
    // Linear attention: KᵀV is a d×d GEMM per head over N tokens
    // (Ci = N tokens reduce), then Q·(KᵀV) is N×d×d.
    layers.push(LayerShape::gemm(format!("{tag}_ktv"), d_head, n, d_head).with_repeat(heads));
    layers.push(LayerShape::gemm(format!("{tag}_qktv"), n, d_head, d_head).with_repeat(heads));
    // Output projection.
    layers.push(LayerShape::gemm(format!("{tag}_proj"), n, c, c));
    // MBConv FFN.
    mbconv(layers, &format!("{tag}_ffn"), h, c, c, 1);
}

/// Builds the EfficientViT-B1 segmentation workload at `input` × `input`.
///
/// # Panics
///
/// Panics if `input` is not divisible by 32.
pub fn efficientvit_b1(input: usize) -> Workload {
    assert!(
        input.is_multiple_of(32),
        "input resolution must be divisible by 32"
    );
    let mut layers = Vec::new();

    // Stem: 3×3 stride-2 conv to width 16 + one depthwise MBConv.
    let h2 = input / 2;
    layers.push(LayerShape::conv("stem", h2, h2, 3, 16, 3, 2));
    mbconv(&mut layers, "stage1_mb1", h2, 16, 16, 1);

    // Stage 2: stride to /4, width 32, 2 blocks.
    mbconv(&mut layers, "stage2_mb1", h2, 16, 32, 2);
    let h4 = input / 4;
    mbconv(&mut layers, "stage2_mb2", h4, 32, 32, 1);

    // Stage 3: stride to /8, width 64, 3 blocks.
    mbconv(&mut layers, "stage3_mb1", h4, 32, 64, 2);
    let h8 = input / 8;
    mbconv(&mut layers, "stage3_mb2", h8, 64, 64, 1);
    mbconv(&mut layers, "stage3_mb3", h8, 64, 64, 1);

    // Stage 4: stride to /16, width 128, EfficientViT modules ×3.
    mbconv(&mut layers, "stage4_down", h8, 64, 128, 2);
    let h16 = input / 16;
    for i in 0..3 {
        evit_module(&mut layers, &format!("stage4_evit{}", i + 1), h16, 128);
    }

    // Stage 5: stride to /32, width 256, EfficientViT modules ×4.
    mbconv(&mut layers, "stage5_down", h16, 128, 256, 2);
    let h32 = input / 32;
    for i in 0..4 {
        evit_module(&mut layers, &format!("stage5_evit{}", i + 1), h32, 256);
    }

    // Segmentation head (EfficientViT-seg): fuse stage 3/4/5 features at
    // 1/8 resolution into 64 channels, a few MBConv refinements, classify
    // 150 ADE20K classes.
    let n8 = h8 * h8;
    layers.push(LayerShape::gemm("head_in_s3", n8, 64, 64));
    layers.push(LayerShape::gemm("head_in_s4", h16 * h16, 128, 64));
    layers.push(LayerShape::gemm("head_in_s5", h32 * h32, 256, 64));
    mbconv(&mut layers, "head_mb1", h8, 64, 64, 1);
    mbconv(&mut layers, "head_mb2", h8, 64, 64, 1);
    layers.push(LayerShape::gemm("head_cls", n8, 64, 150));

    Workload::new(format!("EfficientViT-B1 ({input}x{input})"), layers)
}

/// The paper's configuration: 512×512 ADE20K crops.
pub fn efficientvit_b1_512() -> Workload {
    efficientvit_b1(512)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_resolution_early_stages() {
        let w = efficientvit_b1_512();
        let stem = &w.layers[0];
        assert_eq!(stem.output_pixels(), 256 * 256);
    }

    #[test]
    fn parameter_scale_matches_b1() {
        // EfficientViT-B1 ≈ 9.1 M params (classification); the seg variant
        // trims the wide classification head, so accept a broad band.
        let w = efficientvit_b1_512();
        let params = w.total_weight_bytes();
        assert!(
            params > 2.0e6 && params < 15.0e6,
            "B1 weight bytes {params:.2e} outside plausible range"
        );
    }

    #[test]
    fn linear_attention_avoids_quadratic_tokens() {
        // No layer's MAC count may scale with tokens² (that is the point
        // of ReLU linear attention): the `ktv` GEMM reduces over N but
        // outputs d×d.
        let w = efficientvit_b1_512();
        for l in &w.layers {
            if l.name.contains("ktv") {
                assert!(l.co <= 16 && l.ho <= 16 || l.name.contains("qktv"));
            }
        }
    }
}
