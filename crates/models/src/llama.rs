//! LLaMA2-7B GEMM inventories (Touvron et al., 2023) for the paper's
//! Section IV-D LLM experiments.

use apsq_dataflow::{LayerShape, Workload};

/// LLaMA2-7B hyper-parameters: 32 layers, 4096 hidden, 32 heads,
/// 11008 FFN intermediate (SwiGLU), 32000 vocabulary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LlamaConfig {
    /// Hidden dimension.
    pub hidden: usize,
    /// Decoder layers.
    pub layers: usize,
    /// Attention heads.
    pub heads: usize,
    /// FFN intermediate dimension.
    pub ffn: usize,
    /// Vocabulary size.
    pub vocab: usize,
}

impl LlamaConfig {
    /// LLaMA2-7B.
    pub fn llama2_7b() -> Self {
        LlamaConfig {
            hidden: 4096,
            layers: 32,
            heads: 32,
            ffn: 11008,
            vocab: 32000,
        }
    }

    /// Per-head dimension.
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }
}

/// Prefill-stage workload: all `seq` tokens processed at once.
pub fn llama_prefill(config: &LlamaConfig, seq: usize) -> Workload {
    let h = config.hidden;
    let d = config.head_dim();
    let l = config.layers;
    let heads = config.heads;
    let layers = vec![
        LayerShape::gemm("qkvo_proj", seq, h, h).with_repeat(4 * l),
        LayerShape::gemm("attn_scores", seq, d, seq).with_repeat(heads * l),
        LayerShape::gemm("attn_context", seq, seq, d).with_repeat(heads * l),
        LayerShape::gemm("ffn_gate_up", seq, h, config.ffn).with_repeat(2 * l),
        LayerShape::gemm("ffn_down", seq, config.ffn, h).with_repeat(l),
        LayerShape::gemm("lm_head", seq, h, config.vocab),
    ];
    Workload::new(format!("LLaMA2-7B prefill (seq={seq})"), layers)
}

/// One decode step: a single query token attending to a `kv_len`-entry KV
/// cache (the autoregressive generation regime where the paper sets
/// `Po = 1`).
pub fn llama_decode_step(config: &LlamaConfig, kv_len: usize) -> Workload {
    let h = config.hidden;
    let d = config.head_dim();
    let l = config.layers;
    let heads = config.heads;
    let layers = vec![
        LayerShape::gemm("qkvo_proj", 1, h, h).with_repeat(4 * l),
        LayerShape::gemm("attn_scores", 1, d, kv_len).with_repeat(heads * l),
        LayerShape::gemm("attn_context", 1, kv_len, d).with_repeat(heads * l),
        LayerShape::gemm("ffn_gate_up", 1, h, config.ffn).with_repeat(2 * l),
        LayerShape::gemm("ffn_down", 1, config.ffn, h).with_repeat(l),
        LayerShape::gemm("lm_head", 1, h, config.vocab),
    ];
    Workload::new(format!("LLaMA2-7B decode (kv={kv_len})"), layers)
}

/// The paper's Table IV workload: a prefill of `seq` tokens plus
/// `decode_steps` single-token decode passes against the full `seq`-entry
/// KV cache.
///
/// With `decode_steps = 1` this reproduces the paper's Table IV ratios
/// (WS baseline ≈ 32–37×, `gs = 3/4` ≈ 8–10×): the table's normalized
/// energies are PSUM-dominated, which only holds when decode-stage weight
/// re-streaming (which is identical across all PSUM formats and grows
/// linearly with generated tokens) does not swamp the ratio. Larger
/// `decode_steps` values let callers study that dilution.
pub fn llama2_7b_prefill_decode(seq: usize, decode_steps: usize) -> Workload {
    let config = LlamaConfig::llama2_7b();
    let mut layers = llama_prefill(&config, seq).layers;
    if decode_steps > 0 {
        let decode = llama_decode_step(&config, seq);
        for mut l in decode.layers {
            l.name = format!("decode_{}", l.name);
            l.repeat *= decode_steps;
            layers.push(l);
        }
    }
    Workload::new(
        format!("LLaMA2-7B prefill+decode (seq={seq}, steps={decode_steps})"),
        layers,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_scale_matches_7b() {
        // Per layer: 4·4096² + 3·4096·11008 = 202.3 M weights; ×32 layers
        // ≈ 6.5 G + LM head 131 M.
        let w = llama_prefill(&LlamaConfig::llama2_7b(), 4096);
        let per_layer = 4.0 * 4096.0f64.powi(2) + 3.0 * 4096.0 * 11008.0;
        let expected = 32.0 * per_layer + 4096.0 * 32000.0;
        // Attention score/context "weights" are KV activations; subtract
        // them from the inventory for this comparison.
        let attn = 32.0 * 32.0 * (128.0 * 4096.0 + 4096.0 * 128.0);
        assert_eq!(w.total_weight_bytes() - attn, expected);
        assert!(expected > 6.0e9 && expected < 7.0e9);
    }

    #[test]
    fn decode_step_is_vector_workload() {
        let w = llama_decode_step(&LlamaConfig::llama2_7b(), 4096);
        assert!(w
            .layers
            .iter()
            .all(|l| l.ho == 1 || l.name.contains("scores") || l.name.contains("context")));
        // One decode step ≈ model-size MACs (weights touched once).
        assert!(w.total_macs() > 6.5e9 && w.total_macs() < 9.0e9);
    }

    #[test]
    fn prefill_decode_mac_balance() {
        // Generating seq tokens costs about as many GEMM MACs as the
        // prefill (attention KV costs differ by ~2×, a small share).
        let pd = llama2_7b_prefill_decode(4096, 4096);
        let p = llama_prefill(&LlamaConfig::llama2_7b(), 4096);
        let ratio = pd.total_macs() / p.total_macs();
        assert!(ratio > 1.8 && ratio < 2.6, "ratio {ratio}");
    }

    #[test]
    fn zero_decode_steps_is_prefill_only() {
        let pd = llama2_7b_prefill_decode(1024, 0);
        let p = llama_prefill(&LlamaConfig::llama2_7b(), 1024);
        assert_eq!(pd.total_macs(), p.total_macs());
    }
}
