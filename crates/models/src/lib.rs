//! GEMM/conv workload inventories for the networks evaluated in the APSQ
//! paper: BERT-Base/Large, Segformer-B0, EfficientViT-B1, and LLaMA2-7B.
//!
//! Each builder returns an [`apsq_dataflow::Workload`] — a list of layer
//! geometries with multiplicities — that feeds the analytical energy
//! framework. [`execute_workload`] additionally *runs* an inventory as
//! real INT8 GEMMs/convs through an [`apsq_tensor::ExecEngine`], so the
//! same shapes double as a determinism and throughput harness for the
//! parallel execution stack. Inventories are reconstructed from the architectures'
//! published hyper-parameters; parameter- and MAC-count sanity tests pin
//! them to the published model scales.
//!
//! # Example
//!
//! ```
//! use apsq_models::bert_base_128;
//!
//! let w = bert_base_128();
//! assert!(w.total_macs() > 1e10); // ~11 GMACs at 128 tokens
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod bert;
mod efficientvit;
mod exec;
mod llama;
mod segformer;

pub use bert::{bert_base_128, bert_workload, BertConfig};
pub use efficientvit::{efficientvit_b1, efficientvit_b1_512};
pub use exec::{
    execute_layer, execute_workload, execute_workloads, LayerRun, Precision, WorkloadRun,
};
pub use llama::{llama2_7b_prefill_decode, llama_decode_step, llama_prefill, LlamaConfig};
pub use segformer::{segformer_b0, segformer_b0_512};
