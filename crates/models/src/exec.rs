//! Executing workload inventories as real integer GEMMs/convs through the
//! [`ExecEngine`] — turning the static layer geometry of each model into
//! measurable compute.
//!
//! The analytical framework prices a [`Workload`] from shape arithmetic
//! alone; this module actually *runs* each layer: GEMM layers as
//! `[tokens, Ci] × [Ci, Co]` INT8 matmuls, spatial convolutions through
//! im2col + GEMM, all dispatched on a caller-supplied engine. Because the
//! engine is bit-identical across thread counts, a workload's output
//! checksum is a determinism probe for the whole multi-threaded stack.
//!
//! Paper-scale layers (LLaMA2-7B FFNs) are far too large to execute per
//! test, so the runner scales a layer's *parallel* extents (tokens /
//! output channels / spatial size) down to a MAC budget while always
//! preserving the reduction depth `Ci·Kh·Kw` — the dimension APSQ tiles —
//! so PSUM streams stay representative.

use apsq_core::{grouped_apsq, ApsqConfig, BufferTraffic, GroupSize, ScaleSchedule};
use apsq_dataflow::{LayerShape, Workload};
use apsq_quant::Bitwidth;
use apsq_tensor::{ExecEngine, Int8Tensor, Tensor};

/// The numeric datapath a workload executes on — the serving layer's
/// precision switch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Precision {
    /// f32 GEMMs/convs through the engine (the fake-quant reference
    /// regime).
    #[default]
    F32,
    /// i8×i8→i32 GEMMs with grouped APSQ folded into the K loop (the
    /// paper's integer datapath); spatial convolutions run exact int8
    /// through im2col + GEMM.
    Int8Apsq,
}

impl Precision {
    /// Display name used in configs, payload labels, and reports.
    pub fn name(&self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Int8Apsq => "int8_apsq",
        }
    }

    /// Bytes one cached decode token occupies in a KV cache of this
    /// precision, per layer: the f32 cache stores `2·d` floats, the int8
    /// cache `2·d` codes plus `2·heads` per-(token, head) power-of-two
    /// scale exponents (`apsq_nn::Int8AttentionKvCache`). The serve
    /// layer's KV byte budget divides by this to size resident sessions.
    pub fn kv_bytes_per_token(&self, width: usize, heads: usize) -> usize {
        match self {
            Precision::F32 => 2 * width * std::mem::size_of::<f32>(),
            Precision::Int8Apsq => 2 * (width + heads),
        }
    }
}

/// APSQ group size used when executing inventory GEMMs at
/// [`Precision::Int8Apsq`] (the paper's headline `gs` range midpoint).
const APSQ_GS: usize = 2;

/// Result of executing one layer instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LayerRun {
    /// Layer name from the inventory.
    pub name: String,
    /// Instances of this layer in the network (not executed repeatedly).
    pub repeat: usize,
    /// MACs actually executed (after any budget scaling).
    pub macs_executed: u64,
    /// MACs one full-size instance would take.
    pub macs_full: u64,
    /// Wrapping fold of the output bits — a determinism probe that any
    /// kernel or threading bug perturbs.
    pub checksum: i64,
    /// PSUM-buffer traffic (stored words) the APSQ fold incurred — zero
    /// for f32 and for the exact conv path, whose accumulators stay in
    /// registers here.
    pub psum_traffic: BufferTraffic,
}

/// Result of executing a whole workload inventory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkloadRun {
    /// Workload display name.
    pub workload: String,
    /// Per-layer results, in inventory order.
    pub layers: Vec<LayerRun>,
}

impl WorkloadRun {
    /// Total MACs executed across all layers (each distinct layer once).
    pub fn total_macs_executed(&self) -> u64 {
        self.layers.iter().map(|l| l.macs_executed).sum()
    }

    /// Total PSUM-buffer traffic (stored words) across all layers.
    pub fn total_psum_traffic(&self) -> BufferTraffic {
        let mut t = BufferTraffic::new();
        for l in &self.layers {
            t += l.psum_traffic;
        }
        t
    }

    /// Combined checksum over all layer outputs.
    pub fn checksum(&self) -> i64 {
        self.layers
            .iter()
            .fold(0i64, |acc, l| acc.wrapping_mul(31).wrapping_add(l.checksum))
    }
}

/// Executes one layer through the engine at the given [`Precision`],
/// scaled to at most `max_macs` multiply-accumulates (0 means
/// unlimited). Scaling halves the parallel extents (tokens / spatial
/// output / output channels) and never the reduction depth.
///
/// At [`Precision::Int8Apsq`], GEMM layers fold grouped APSQ into the
/// K loop (schedule calibrated from the layer's own PSUM stream, tile
/// depth 64 input channels) and report the fold's buffer traffic;
/// spatial convolutions run exact int8 through im2col + GEMM.
///
/// # Panics
///
/// Panics if the layer geometry is degenerate (zero extents are already
/// rejected by [`LayerShape`]'s constructors).
pub fn execute_layer(
    eng: &ExecEngine,
    layer: &LayerShape,
    max_macs: u64,
    precision: Precision,
) -> LayerRun {
    let macs_full = layer.macs() as u64;
    let is_gemm = layer.kh == 1 && layer.kw == 1 && layer.stride == 1;
    let mut psum_traffic = BufferTraffic::new();
    let (checksum, macs_executed) = if is_gemm {
        let mut tokens = layer.ho * layer.wo;
        let mut co = layer.co;
        let ci = layer.ci;
        while max_macs > 0 && (tokens * ci * co) as u64 > max_macs && (tokens > 1 || co > 1) {
            if tokens >= co {
                tokens = (tokens / 2).max(1);
            } else {
                co = (co / 2).max(1);
            }
        }
        let checksum = match precision {
            Precision::F32 => {
                let a = Tensor::from_vec(synthetic_f32(tokens * ci, 0x5eed), [tokens, ci]);
                let b = Tensor::from_vec(synthetic_f32(ci * co, 0xca1f), [ci, co]);
                wrapping_bits_sum(eng.matmul(&a, &b).data())
            }
            Precision::Int8Apsq => {
                let a = synthetic_i8(tokens * ci, 0x5eed).reshape2(tokens, ci);
                let b = synthetic_i8(ci * co, 0xca1f).reshape2(ci, co);
                let k_tile = ci.min(64);
                // Calibration needs every tile at once, so the GEMM runs
                // exactly once and the collected stream is folded directly
                // (bit-identical to the streamed fold by construction) —
                // no second GEMM pass in the serving prefill hot path.
                let tiles = eng.int8_matmul_psum_tiles(&a, &b, k_tile);
                let sched = ScaleSchedule::calibrate(
                    std::slice::from_ref(&tiles),
                    Bitwidth::INT8,
                    GroupSize::new(APSQ_GS),
                );
                let run = grouped_apsq(&tiles, &sched, &ApsqConfig::int8(APSQ_GS));
                psum_traffic = run.traffic;
                wrapping_sum(run.output.data())
            }
        };
        (checksum, (tokens * ci * co) as u64)
    } else {
        assert_eq!(
            layer.kh, layer.kw,
            "execute_layer runs conv layers through the square-kernel im2col GEMM path"
        );
        let (mut ho, mut wo, mut co) = (layer.ho, layer.wo, layer.co);
        let k = layer.kh;
        let (ci, stride) = (layer.ci, layer.stride);
        let macs = |ho: usize, wo: usize, co: usize| (ho * wo * co * ci * k * k) as u64;
        while max_macs > 0 && macs(ho, wo, co) > max_macs && (ho > 1 || wo > 1 || co > 1) {
            if ho * wo >= co {
                ho = (ho / 2).max(1);
                wo = (wo / 2).max(1);
            } else {
                co = (co / 2).max(1);
            }
        }
        let hi = (ho - 1) * stride + k;
        let wi = (wo - 1) * stride + k;
        let checksum = match precision {
            Precision::F32 => {
                let input = Tensor::from_vec(synthetic_f32(ci * hi * wi, 0x5eed), [ci, hi, wi]);
                let cols = ci * k * k;
                // Weights generated [Co, Ci·K·K] row-major — exactly the
                // transposed-B layout matmul_bt consumes.
                let wmat = Tensor::from_vec(synthetic_f32(co * cols, 0xca1f), [co, cols]);
                let lowered = eng.im2col(&input, k, stride);
                wrapping_bits_sum(eng.matmul_bt(&lowered, &wmat).data())
            }
            Precision::Int8Apsq => {
                let input =
                    Int8Tensor::from_vec(synthetic_i8(ci * hi * wi, 0x5eed).data, [ci, hi, wi]);
                let weight = Int8Tensor::from_vec(
                    synthetic_i8(co * ci * k * k, 0xca1f).data,
                    [co, ci, k, k],
                );
                wrapping_sum(eng.conv2d_i8_gemm(&input, &weight, stride).data())
            }
        };
        (checksum, macs(ho, wo, co))
    };
    LayerRun {
        name: layer.name.clone(),
        repeat: layer.repeat,
        macs_executed,
        macs_full,
        checksum,
        psum_traffic,
    }
}

/// Executes every layer of a workload inventory through the engine (each
/// distinct layer once; `repeat` is carried as metadata). `max_macs_per_layer`
/// bounds the executed size per layer (0 = unlimited).
pub fn execute_workload(
    eng: &ExecEngine,
    w: &Workload,
    max_macs_per_layer: u64,
    precision: Precision,
) -> WorkloadRun {
    WorkloadRun {
        workload: w.name.clone(),
        layers: w
            .layers
            .iter()
            .map(|l| execute_layer(eng, l, max_macs_per_layer, precision))
            .collect(),
    }
}

/// Executes a coalesced batch of workload instances back-to-back on one
/// engine context — the serving-layer entry point for a prefill batch.
/// Each `(workload, max_macs_per_layer)` pair runs exactly as
/// [`execute_workload`] would alone, so results are independent of how
/// requests were grouped; coalescing amortizes the per-dispatch cost of
/// waking an executor.
pub fn execute_workloads(
    eng: &ExecEngine,
    batch: &[(&Workload, u64)],
    precision: Precision,
) -> Vec<WorkloadRun> {
    batch
        .iter()
        .map(|(w, budget)| execute_workload(eng, w, *budget, precision))
        .collect()
}

struct SyntheticVec {
    data: Vec<i8>,
}

impl SyntheticVec {
    fn reshape2(self, m: usize, n: usize) -> Int8Tensor {
        Int8Tensor::from_vec(self.data, [m, n])
    }
}

/// Deterministic pseudo-random i8 fill (xorshift-mixed index), independent
/// of any RNG crate so workload checksums are stable across the workspace.
fn synthetic_i8(n: usize, salt: u64) -> SyntheticVec {
    let data = (0..n)
        .map(|i| {
            let mut x = (i as u64)
                .wrapping_add(salt)
                .wrapping_mul(0x9e3779b97f4a7c15);
            x ^= x >> 29;
            x = x.wrapping_mul(0xbf58476d1ce4e5b9);
            x ^= x >> 32;
            (x % 255) as i8
        })
        .collect();
    SyntheticVec { data }
}

/// The same deterministic fill as [`synthetic_i8`], scaled by 2⁻⁴ into a
/// small exact-in-f32 range — f32 and int8 runs see "the same" data.
fn synthetic_f32(n: usize, salt: u64) -> Vec<f32> {
    synthetic_i8(n, salt)
        .data
        .iter()
        .map(|&v| v as f32 * 0.0625)
        .collect()
}

fn wrapping_sum(vals: &[i32]) -> i64 {
    vals.iter().fold(0i64, |acc, &v| acc.wrapping_add(v as i64))
}

/// Determinism probe for f32 outputs: folds the raw bit patterns, so a
/// single ULP of drift anywhere changes the checksum.
fn wrapping_bits_sum(vals: &[f32]) -> i64 {
    vals.iter()
        .fold(0i64, |acc, &v| acc.wrapping_add(v.to_bits() as i64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bert::{bert_workload, BertConfig};

    fn tiny_bert() -> Workload {
        bert_workload(&BertConfig {
            hidden: 32,
            layers: 1,
            heads: 2,
            ffn: 64,
            tokens: 16,
        })
    }

    #[test]
    fn kv_bytes_per_token_compresses_4x_at_serving_shapes() {
        assert_eq!(Precision::F32.kv_bytes_per_token(128, 4), 1024);
        assert_eq!(Precision::Int8Apsq.kv_bytes_per_token(128, 4), 264);
        // head_dim 64: the per-head scale exponents amortize below the
        // 3.9× acceptance floor's slack.
        let f32_b = Precision::F32.kv_bytes_per_token(256, 4) as f64;
        let i8_b = Precision::Int8Apsq.kv_bytes_per_token(256, 4) as f64;
        assert!(f32_b / i8_b >= 3.9, "{}", f32_b / i8_b);
    }

    #[test]
    fn workload_executes_and_is_deterministic_across_threads() {
        let w = tiny_bert();
        for precision in [Precision::F32, Precision::Int8Apsq] {
            let serial = execute_workload(&ExecEngine::serial(), &w, 0, precision);
            let parallel = execute_workload(
                &ExecEngine::with_threads(4).with_spawn_threshold(0),
                &w,
                0,
                precision,
            );
            assert_eq!(
                serial,
                parallel,
                "threading changed {} results",
                precision.name()
            );
            assert_eq!(serial.layers.len(), w.layers.len());
            assert!(serial.total_macs_executed() > 0);
            // Unscaled runs execute exactly the inventory's MACs per instance.
            for (run, layer) in serial.layers.iter().zip(&w.layers) {
                assert_eq!(run.macs_executed, layer.macs() as u64, "{}", run.name);
                assert_eq!(run.repeat, layer.repeat);
            }
        }
    }

    #[test]
    fn precisions_diverge_but_each_is_self_consistent() {
        let w = tiny_bert();
        let eng = ExecEngine::serial();
        let f = execute_workload(&eng, &w, 0, Precision::F32);
        let q = execute_workload(&eng, &w, 0, Precision::Int8Apsq);
        assert_ne!(f.checksum(), q.checksum(), "precisions cannot share bits");
        // Only the integer path touches the PSUM buffer.
        assert_eq!(f.total_psum_traffic().total(), 0);
        assert!(q.total_psum_traffic().writes > 0);
        // A paper-depth reduction (768 > the 64-channel tile) streams
        // multiple PSUM tiles: np writes, np−1 reads per element.
        let deep = LayerShape::gemm("ffn1", 8, 768, 16);
        let run = execute_layer(&eng, &deep, 0, Precision::Int8Apsq);
        let np = 768u64.div_ceil(64);
        assert_eq!(run.psum_traffic.writes, np * 8 * 16);
        assert_eq!(run.psum_traffic.reads, (np - 1) * 8 * 16);
    }

    #[test]
    fn mac_budget_scales_parallel_extents_only() {
        let layer = LayerShape::gemm("ffn1", 128, 768, 3072);
        let run = execute_layer(
            &ExecEngine::serial(),
            &layer,
            1_000_000,
            Precision::Int8Apsq,
        );
        assert!(run.macs_executed <= 1_000_000, "{}", run.macs_executed);
        // The reduction depth must survive scaling: executed MACs stay a
        // multiple of Ci.
        assert_eq!(run.macs_executed % 768, 0);
        assert_eq!(run.macs_full, 128 * 768 * 3072);
    }

    #[test]
    fn conv_layers_run_through_im2col_gemm() {
        let layer = LayerShape::conv("stem", 8, 8, 3, 16, 3, 2);
        for precision in [Precision::F32, Precision::Int8Apsq] {
            let a = execute_layer(&ExecEngine::serial(), &layer, 0, precision);
            let b = execute_layer(
                &ExecEngine::with_threads(3).with_spawn_threshold(0),
                &layer,
                0,
                precision,
            );
            assert_eq!(a, b);
            assert_eq!(a.macs_executed, (8 * 8 * 16 * 3 * 3 * 3) as u64);
        }
    }

    #[test]
    fn coalesced_batch_matches_individual_runs() {
        let w1 = tiny_bert();
        let w2 = tiny_bert();
        let eng = ExecEngine::serial();
        let p = Precision::Int8Apsq;
        let batched = execute_workloads(&eng, &[(&w1, 0), (&w2, 50_000)], p);
        assert_eq!(batched[0], execute_workload(&eng, &w1, 0, p));
        assert_eq!(batched[1], execute_workload(&eng, &w2, 50_000, p));
    }

    #[test]
    fn paper_models_execute_under_budget() {
        for w in [
            crate::bert_base_128(),
            crate::segformer_b0_512(),
            crate::efficientvit_b1_512(),
        ] {
            let run = execute_workload(&ExecEngine::serial(), &w, 200_000, Precision::Int8Apsq);
            assert_eq!(run.layers.len(), w.layers.len(), "{}", w.name);
            assert!(run.layers.iter().all(|l| l.macs_executed > 0));
        }
    }
}
