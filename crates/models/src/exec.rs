//! Executing workload inventories as real integer GEMMs/convs through the
//! [`ExecEngine`] — turning the static layer geometry of each model into
//! measurable compute.
//!
//! The analytical framework prices a [`Workload`] from shape arithmetic
//! alone; this module actually *runs* each layer: GEMM layers as
//! `[tokens, Ci] × [Ci, Co]` INT8 matmuls, spatial convolutions through
//! im2col + GEMM, all dispatched on a caller-supplied engine. Because the
//! engine is bit-identical across thread counts, a workload's output
//! checksum is a determinism probe for the whole multi-threaded stack.
//!
//! Paper-scale layers (LLaMA2-7B FFNs) are far too large to execute per
//! test, so the runner scales a layer's *parallel* extents (tokens /
//! output channels / spatial size) down to a MAC budget while always
//! preserving the reduction depth `Ci·Kh·Kw` — the dimension APSQ tiles —
//! so PSUM streams stay representative.

use apsq_dataflow::{LayerShape, Workload};
use apsq_tensor::{ExecEngine, Int8Tensor};

/// Result of executing one layer instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LayerRun {
    /// Layer name from the inventory.
    pub name: String,
    /// Instances of this layer in the network (not executed repeatedly).
    pub repeat: usize,
    /// MACs actually executed (after any budget scaling).
    pub macs_executed: u64,
    /// MACs one full-size instance would take.
    pub macs_full: u64,
    /// Wrapping sum of the i32 output — a determinism probe that any
    /// kernel or threading bug perturbs.
    pub checksum: i64,
}

/// Result of executing a whole workload inventory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkloadRun {
    /// Workload display name.
    pub workload: String,
    /// Per-layer results, in inventory order.
    pub layers: Vec<LayerRun>,
}

impl WorkloadRun {
    /// Total MACs executed across all layers (each distinct layer once).
    pub fn total_macs_executed(&self) -> u64 {
        self.layers.iter().map(|l| l.macs_executed).sum()
    }

    /// Combined checksum over all layer outputs.
    pub fn checksum(&self) -> i64 {
        self.layers
            .iter()
            .fold(0i64, |acc, l| acc.wrapping_mul(31).wrapping_add(l.checksum))
    }
}

/// Executes one layer through the engine, scaled to at most `max_macs`
/// multiply-accumulates (0 means unlimited). Scaling halves the parallel
/// extents (tokens / spatial output / output channels) and never the
/// reduction depth.
///
/// # Panics
///
/// Panics if the layer geometry is degenerate (zero extents are already
/// rejected by [`LayerShape`]'s constructors).
pub fn execute_layer(eng: &ExecEngine, layer: &LayerShape, max_macs: u64) -> LayerRun {
    let macs_full = layer.macs() as u64;
    let is_gemm = layer.kh == 1 && layer.kw == 1 && layer.stride == 1;
    let (checksum, macs_executed) = if is_gemm {
        let mut tokens = layer.ho * layer.wo;
        let mut co = layer.co;
        let ci = layer.ci;
        while max_macs > 0 && (tokens * ci * co) as u64 > max_macs && (tokens > 1 || co > 1) {
            if tokens >= co {
                tokens = (tokens / 2).max(1);
            } else {
                co = (co / 2).max(1);
            }
        }
        let a = synthetic_i8(tokens * ci, 0x5eed).reshape2(tokens, ci);
        let b = synthetic_i8(ci * co, 0xca1f).reshape2(ci, co);
        let out = eng.int8_matmul(&a, &b);
        (wrapping_sum(out.data()), (tokens * ci * co) as u64)
    } else {
        assert_eq!(
            layer.kh, layer.kw,
            "execute_layer runs conv layers through the square-kernel im2col GEMM path"
        );
        let (mut ho, mut wo, mut co) = (layer.ho, layer.wo, layer.co);
        let k = layer.kh;
        let (ci, stride) = (layer.ci, layer.stride);
        let macs = |ho: usize, wo: usize, co: usize| (ho * wo * co * ci * k * k) as u64;
        while max_macs > 0 && macs(ho, wo, co) > max_macs && (ho > 1 || wo > 1 || co > 1) {
            if ho * wo >= co {
                ho = (ho / 2).max(1);
                wo = (wo / 2).max(1);
            } else {
                co = (co / 2).max(1);
            }
        }
        let hi = (ho - 1) * stride + k;
        let wi = (wo - 1) * stride + k;
        let input = Int8Tensor::from_vec(synthetic_i8(ci * hi * wi, 0x5eed).data, [ci, hi, wi]);
        let weight =
            Int8Tensor::from_vec(synthetic_i8(co * ci * k * k, 0xca1f).data, [co, ci, k, k]);
        let out = eng.conv2d_i8_gemm(&input, &weight, stride);
        (wrapping_sum(out.data()), macs(ho, wo, co))
    };
    LayerRun {
        name: layer.name.clone(),
        repeat: layer.repeat,
        macs_executed,
        macs_full,
        checksum,
    }
}

/// Executes every layer of a workload inventory through the engine (each
/// distinct layer once; `repeat` is carried as metadata). `max_macs_per_layer`
/// bounds the executed size per layer (0 = unlimited).
pub fn execute_workload(eng: &ExecEngine, w: &Workload, max_macs_per_layer: u64) -> WorkloadRun {
    WorkloadRun {
        workload: w.name.clone(),
        layers: w
            .layers
            .iter()
            .map(|l| execute_layer(eng, l, max_macs_per_layer))
            .collect(),
    }
}

/// Executes a coalesced batch of workload instances back-to-back on one
/// engine context — the serving-layer entry point for a prefill batch.
/// Each `(workload, max_macs_per_layer)` pair runs exactly as
/// [`execute_workload`] would alone, so results are independent of how
/// requests were grouped; coalescing amortizes the per-dispatch cost of
/// waking an executor.
pub fn execute_workloads(eng: &ExecEngine, batch: &[(&Workload, u64)]) -> Vec<WorkloadRun> {
    batch
        .iter()
        .map(|(w, budget)| execute_workload(eng, w, *budget))
        .collect()
}

struct SyntheticVec {
    data: Vec<i8>,
}

impl SyntheticVec {
    fn reshape2(self, m: usize, n: usize) -> Int8Tensor {
        Int8Tensor::from_vec(self.data, [m, n])
    }
}

/// Deterministic pseudo-random i8 fill (xorshift-mixed index), independent
/// of any RNG crate so workload checksums are stable across the workspace.
fn synthetic_i8(n: usize, salt: u64) -> SyntheticVec {
    let data = (0..n)
        .map(|i| {
            let mut x = (i as u64)
                .wrapping_add(salt)
                .wrapping_mul(0x9e3779b97f4a7c15);
            x ^= x >> 29;
            x = x.wrapping_mul(0xbf58476d1ce4e5b9);
            x ^= x >> 32;
            (x % 255) as i8
        })
        .collect();
    SyntheticVec { data }
}

fn wrapping_sum(vals: &[i32]) -> i64 {
    vals.iter().fold(0i64, |acc, &v| acc.wrapping_add(v as i64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bert::{bert_workload, BertConfig};

    fn tiny_bert() -> Workload {
        bert_workload(&BertConfig {
            hidden: 32,
            layers: 1,
            heads: 2,
            ffn: 64,
            tokens: 16,
        })
    }

    #[test]
    fn workload_executes_and_is_deterministic_across_threads() {
        let w = tiny_bert();
        let serial = execute_workload(&ExecEngine::serial(), &w, 0);
        let parallel =
            execute_workload(&ExecEngine::with_threads(4).with_spawn_threshold(0), &w, 0);
        assert_eq!(serial, parallel, "threading changed workload results");
        assert_eq!(serial.layers.len(), w.layers.len());
        assert!(serial.total_macs_executed() > 0);
        // Unscaled runs execute exactly the inventory's MACs per instance.
        for (run, layer) in serial.layers.iter().zip(&w.layers) {
            assert_eq!(run.macs_executed, layer.macs() as u64, "{}", run.name);
            assert_eq!(run.repeat, layer.repeat);
        }
    }

    #[test]
    fn mac_budget_scales_parallel_extents_only() {
        let layer = LayerShape::gemm("ffn1", 128, 768, 3072);
        let run = execute_layer(&ExecEngine::serial(), &layer, 1_000_000);
        assert!(run.macs_executed <= 1_000_000, "{}", run.macs_executed);
        // The reduction depth must survive scaling: executed MACs stay a
        // multiple of Ci.
        assert_eq!(run.macs_executed % 768, 0);
        assert_eq!(run.macs_full, 128 * 768 * 3072);
    }

    #[test]
    fn conv_layers_run_through_im2col_gemm() {
        let layer = LayerShape::conv("stem", 8, 8, 3, 16, 3, 2);
        let a = execute_layer(&ExecEngine::serial(), &layer, 0);
        let b = execute_layer(
            &ExecEngine::with_threads(3).with_spawn_threshold(0),
            &layer,
            0,
        );
        assert_eq!(a, b);
        assert_eq!(a.macs_executed, (8 * 8 * 16 * 3 * 3 * 3) as u64);
    }

    #[test]
    fn coalesced_batch_matches_individual_runs() {
        let w1 = tiny_bert();
        let w2 = tiny_bert();
        let eng = ExecEngine::serial();
        let batched = execute_workloads(&eng, &[(&w1, 0), (&w2, 50_000)]);
        assert_eq!(batched[0], execute_workload(&eng, &w1, 0));
        assert_eq!(batched[1], execute_workload(&eng, &w2, 50_000));
    }

    #[test]
    fn paper_models_execute_under_budget() {
        for w in [
            crate::bert_base_128(),
            crate::segformer_b0_512(),
            crate::efficientvit_b1_512(),
        ] {
            let run = execute_workload(&ExecEngine::serial(), &w, 200_000);
            assert_eq!(run.layers.len(), w.layers.len(), "{}", w.name);
            assert!(run.layers.iter().all(|l| l.macs_executed > 0));
        }
    }
}
