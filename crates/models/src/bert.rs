//! BERT encoder GEMM inventories (Devlin et al., 2018).

use apsq_dataflow::{LayerShape, Workload};

/// Hyper-parameters of a BERT encoder stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BertConfig {
    /// Hidden dimension `d_model`.
    pub hidden: usize,
    /// Number of encoder layers.
    pub layers: usize,
    /// Number of attention heads.
    pub heads: usize,
    /// FFN intermediate dimension.
    pub ffn: usize,
    /// Input sequence length (tokens).
    pub tokens: usize,
}

impl BertConfig {
    /// BERT-Base: 768 hidden, 12 layers, 12 heads, 3072 FFN.
    pub fn base(tokens: usize) -> Self {
        BertConfig {
            hidden: 768,
            layers: 12,
            heads: 12,
            ffn: 3072,
            tokens,
        }
    }

    /// BERT-Large: 1024 hidden, 24 layers, 16 heads, 4096 FFN.
    pub fn large(tokens: usize) -> Self {
        BertConfig {
            hidden: 1024,
            layers: 24,
            heads: 16,
            ffn: 4096,
            tokens,
        }
    }

    /// Per-head dimension.
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }
}

/// Builds the GEMM workload of a BERT encoder stack.
///
/// Per layer: Q/K/V projections, the per-head attention score (`Q·Kᵀ`) and
/// context (`P·V`) matmuls, the attention output projection, and the two
/// FFN GEMMs. Embeddings, layer norms, softmax and residuals contribute no
/// MAC-array GEMMs and are excluded, as in the paper's framework.
pub fn bert_workload(config: &BertConfig) -> Workload {
    let t = config.tokens;
    let h = config.hidden;
    let d = config.head_dim();
    let layers = config.layers;
    let heads = config.heads;

    let layers_vec = vec![
        LayerShape::gemm("qkv_proj", t, h, h).with_repeat(3 * layers),
        LayerShape::gemm("attn_scores", t, d, t).with_repeat(heads * layers),
        LayerShape::gemm("attn_context", t, t, d).with_repeat(heads * layers),
        LayerShape::gemm("attn_out", t, h, h).with_repeat(layers),
        LayerShape::gemm("ffn1", t, h, config.ffn).with_repeat(layers),
        LayerShape::gemm("ffn2", t, config.ffn, h).with_repeat(layers),
    ];
    Workload::new(format!("BERT(h={h},L={layers},t={t})"), layers_vec)
}

/// The paper's NLP benchmark: BERT-Base with 128 input tokens.
pub fn bert_base_128() -> Workload {
    bert_workload(&BertConfig::base(128))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_base_gemm_weight_count() {
        // Encoder GEMM weights: 12 layers × (4·768² + 2·768·3072) = 85.0M.
        let w = bert_base_128();
        let expect = 12.0 * (4.0 * 768.0 * 768.0 + 2.0 * 768.0 * 3072.0);
        // Attention score/context matmuls have no trained weights, but the
        // framework counts their "weight" operand (K/V activations):
        // 12 layers × 12 heads × 2 × (64·128) each.
        let attn_operands = 12.0 * 12.0 * (64.0 * 128.0 + 128.0 * 64.0);
        assert_eq!(w.total_weight_bytes(), expect + attn_operands);
    }

    #[test]
    fn bert_base_macs() {
        // GEMM MACs: 12 × 128 × (4·768² + 2·768·3072) ≈ 10.9 G plus
        // attention ≈ 0.3 G.
        let w = bert_base_128();
        let gemm = 12.0 * 128.0 * (4.0 * 768.0 * 768.0 + 2.0 * 768.0 * 3072.0);
        let attn = 12.0 * 12.0 * 2.0 * (128.0 * 64.0 * 128.0);
        assert_eq!(w.total_macs(), gemm + attn);
        assert!(w.total_macs() > 10.0e9 && w.total_macs() < 12.0e9);
    }

    #[test]
    fn large_config() {
        let c = BertConfig::large(128);
        assert_eq!(c.head_dim(), 64);
        let w = bert_workload(&c);
        assert!(w.total_macs() > 3.0 * bert_base_128().total_macs());
    }
}
