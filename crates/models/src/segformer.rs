//! Segformer-B0 GEMM/conv inventory (Xie et al., NeurIPS 2021) at
//! 512×512 input — the paper's first ADE20K benchmark.
//!
//! Reconstructed from the published architecture: four hierarchical stages
//! with embed dims [32, 64, 160, 256], depths [2, 2, 2, 2], spatial-
//! reduction-attention ratios [8, 4, 2, 1], heads [1, 2, 5, 8], Mix-FFN
//! expansion 4 with a 3×3 depthwise conv, and the all-MLP decode head with
//! 256 channels over 150 ADE20K classes.

use apsq_dataflow::{LayerShape, Workload};

/// Stage hyper-parameters for Segformer-B0 at a given input resolution.
struct Stage {
    /// Feature-map side length at this stage.
    h: usize,
    /// Embedding dim.
    c: usize,
    /// Blocks in this stage.
    depth: usize,
    /// Spatial-reduction ratio of the attention.
    r: usize,
    /// Attention heads.
    heads: usize,
    /// Patch-embed kernel and stride feeding this stage.
    patch_k: usize,
    patch_s: usize,
    /// Input channels of the patch embed.
    c_in: usize,
}

/// Builds the Segformer-B0 workload at `input` × `input` resolution.
///
/// # Panics
///
/// Panics if `input` is not divisible by 32.
pub fn segformer_b0(input: usize) -> Workload {
    assert!(
        input.is_multiple_of(32),
        "input resolution must be divisible by 32"
    );
    let stages = [
        Stage {
            h: input / 4,
            c: 32,
            depth: 2,
            r: 8,
            heads: 1,
            patch_k: 7,
            patch_s: 4,
            c_in: 3,
        },
        Stage {
            h: input / 8,
            c: 64,
            depth: 2,
            r: 4,
            heads: 2,
            patch_k: 3,
            patch_s: 2,
            c_in: 32,
        },
        Stage {
            h: input / 16,
            c: 160,
            depth: 2,
            r: 2,
            heads: 5,
            patch_k: 3,
            patch_s: 2,
            c_in: 64,
        },
        Stage {
            h: input / 32,
            c: 256,
            depth: 2,
            r: 1,
            heads: 8,
            patch_k: 3,
            patch_s: 2,
            c_in: 160,
        },
    ];

    let mut layers = Vec::new();
    for (si, st) in stages.iter().enumerate() {
        let n = st.h * st.h; // tokens at this stage
        let nr = (st.h / st.r).max(1).pow(2); // reduced tokens for K/V
        let d_head = st.c / st.heads;
        let tag = |name: &str| format!("s{}_{}", si + 1, name);

        // Overlapped patch embedding (strided conv).
        layers.push(LayerShape::conv(
            tag("patch_embed"),
            st.h,
            st.h,
            st.c_in,
            st.c,
            st.patch_k,
            st.patch_s,
        ));

        // Transformer blocks.
        let d = st.depth;
        // Q projection on full tokens.
        layers.push(LayerShape::gemm(tag("attn_q"), n, st.c, st.c).with_repeat(d));
        if st.r > 1 {
            // Spatial reduction: an r×r stride-r conv on C channels.
            layers.push(
                LayerShape::conv(
                    tag("attn_sr"),
                    st.h / st.r,
                    st.h / st.r,
                    st.c,
                    st.c,
                    st.r,
                    st.r,
                )
                .with_repeat(d),
            );
        }
        // K and V projections on reduced tokens.
        layers.push(LayerShape::gemm(tag("attn_kv"), nr, st.c, 2 * st.c).with_repeat(d));
        // Per-head score (N × d_head → N × Nr) and context (N × Nr → N × d_head).
        layers.push(LayerShape::gemm(tag("attn_scores"), n, d_head, nr).with_repeat(d * st.heads));
        layers.push(LayerShape::gemm(tag("attn_context"), n, nr, d_head).with_repeat(d * st.heads));
        // Output projection.
        layers.push(LayerShape::gemm(tag("attn_out"), n, st.c, st.c).with_repeat(d));
        // Mix-FFN: fc1 (×4), 3×3 depthwise on the expanded channels, fc2.
        layers.push(LayerShape::gemm(tag("ffn_fc1"), n, st.c, 4 * st.c).with_repeat(d));
        layers.push(LayerShape::conv(tag("ffn_dw"), st.h, st.h, 1, 4 * st.c, 3, 1).with_repeat(d));
        layers.push(LayerShape::gemm(tag("ffn_fc2"), n, 4 * st.c, st.c).with_repeat(d));
    }

    // All-MLP decode head at H/4 resolution with 256 channels, 150 classes.
    let h4 = input / 4;
    let n4 = h4 * h4;
    for (si, st) in stages.iter().enumerate() {
        // Per-stage linear to the unified 256-channel space (computed at
        // the stage's own resolution, then upsampled — upsampling has no
        // MACs).
        layers.push(LayerShape::gemm(
            format!("head_mlp_s{}", si + 1),
            st.h * st.h,
            st.c,
            256,
        ));
    }
    // Fusion of the 4 concatenated 256-channel maps at H/4.
    layers.push(LayerShape::gemm("head_fuse", n4, 4 * 256, 256));
    // Classifier over 150 ADE20K classes.
    layers.push(LayerShape::gemm("head_cls", n4, 256, 150));

    Workload::new(format!("Segformer-B0 ({input}x{input})"), layers)
}

/// The paper's configuration: 512×512 ADE20K crops.
pub fn segformer_b0_512() -> Workload {
    segformer_b0(512)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_counts() {
        let w = segformer_b0_512();
        // Stage 1 runs at 128×128 = 16384 tokens — the ">20,000 tokens"
        // regime the paper's introduction motivates (with the head layers
        // at the same resolution).
        let s1 = w
            .layers
            .iter()
            .find(|l| l.name == "s1_attn_q")
            .expect("stage-1 attention present");
        assert_eq!(s1.output_pixels(), 16384);
    }

    #[test]
    fn parameter_scale_matches_b0() {
        // Segformer-B0 has ≈ 3.8 M parameters; our GEMM/conv inventory
        // (which counts attention K/V activation operands as "weights" and
        // skips norms/embedding biases) should land in the same ballpark.
        let w = segformer_b0_512();
        let params = w.total_weight_bytes();
        assert!(
            params > 2.0e6 && params < 9.0e6,
            "B0 weight bytes {params:.2e} outside plausible range"
        );
    }

    #[test]
    fn mac_scale() {
        // Published ≈ 8.4 GFLOPs ⇒ ≈ 4.2 GMACs at 512²; allow the
        // inventory (which includes per-head attention matmuls) a generous
        // band.
        let w = segformer_b0_512();
        assert!(
            w.total_macs() > 2.0e9 && w.total_macs() < 9.0e9,
            "B0 MACs {:.2e} outside plausible range",
            w.total_macs()
        );
    }

    #[test]
    #[should_panic(expected = "divisible by 32")]
    fn bad_resolution() {
        segformer_b0(500);
    }
}
