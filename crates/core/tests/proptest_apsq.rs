//! Property-based tests for the APSQ algorithm invariants.

use apsq_core::{
    apsq_recursion_reference, exact_accumulate, grouped_apsq, grouped_apsq_f32,
    grouped_apsq_streamed, ApsqConfig, FloatScaleSchedule, GroupSize, ScaleSchedule,
};
use apsq_quant::Bitwidth;
use apsq_tensor::{int8_matmul_psum_tiles, ExecEngine, Int32Tensor, Int8Tensor};
use proptest::prelude::*;

fn stream_strategy() -> impl Strategy<Value = Vec<Int32Tensor>> {
    (1usize..12, 1usize..16).prop_flat_map(|(np, numel)| {
        proptest::collection::vec(
            proptest::collection::vec(-20_000i32..20_000, numel..=numel),
            np..=np,
        )
        .prop_map(move |tiles| {
            tiles
                .into_iter()
                .map(|v| Int32Tensor::from_vec(v, [numel]))
                .collect()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// gs = 1 must reduce exactly to the eq (10) recursion.
    #[test]
    fn gs1_equals_eq10(stream in stream_strategy()) {
        let sched = ScaleSchedule::calibrate(
            std::slice::from_ref(&stream),
            Bitwidth::INT8,
            GroupSize::new(1),
        );
        let run = grouped_apsq(&stream, &sched, &ApsqConfig::int8(1));
        let reference = apsq_recursion_reference(&stream, &sched);
        prop_assert_eq!(run.output, reference);
    }

    /// Buffer traffic is independent of group size: np·numel writes and
    /// (np−1)·numel reads, exactly (paper Section III-B).
    #[test]
    fn traffic_invariant(stream in stream_strategy(), gs in 1usize..9) {
        let np = stream.len() as u64;
        let numel = stream[0].numel() as u64;
        let sched = ScaleSchedule::calibrate(
            std::slice::from_ref(&stream),
            Bitwidth::INT8,
            GroupSize::new(gs),
        );
        let run = grouped_apsq(&stream, &sched, &ApsqConfig::int8(gs));
        prop_assert_eq!(run.traffic.writes, np * numel);
        prop_assert_eq!(run.traffic.reads, (np - 1) * numel);
    }

    /// Every stored code must fit the configured bit-width.
    #[test]
    fn stored_codes_fit_bitwidth(stream in stream_strategy(), gs in 1usize..6, bits in 3u8..9) {
        let b = Bitwidth::new(bits);
        let sched = ScaleSchedule::calibrate(
            std::slice::from_ref(&stream),
            b,
            GroupSize::new(gs),
        );
        let run = grouped_apsq(&stream, &sched, &ApsqConfig { bits: b, group_size: GroupSize::new(gs) });
        let r = b.signed_range();
        for codes in &run.stored_codes {
            for &c in codes {
                prop_assert!(r.contains(c), "code {} escapes {}", c, b);
            }
        }
    }

    /// With calibrated (non-clipping) scales, the APSQ output error vs the
    /// exact sum is bounded by the sum of per-step half-steps.
    #[test]
    fn error_bounded_by_accumulated_rounding(stream in stream_strategy(), gs in 1usize..5) {
        let sched = ScaleSchedule::calibrate(
            std::slice::from_ref(&stream),
            Bitwidth::INT8,
            GroupSize::new(gs),
        );
        let run = grouped_apsq(&stream, &sched, &ApsqConfig::int8(gs));
        let exact = exact_accumulate(&stream);
        // Worst case: each of the np quantizations contributes α_i/2, and
        // every earlier error can be carried through later requantization.
        let bound: i64 = sched
            .scales()
            .iter()
            .map(|s| (1i64 << s.exponent()) / 2 + 1)
            .sum::<i64>()
            * 2; // slack for error propagation through requantization
        for (a, e) in run.output.data().iter().zip(exact.data()) {
            prop_assert!(
                ((*a as i64) - (*e as i64)).abs() <= bound,
                "err {} exceeds bound {}",
                (*a as i64) - (*e as i64),
                bound
            );
        }
    }

    /// The float fake-quant twin agrees bit-for-bit with the integer golden
    /// model when scales are powers of two and inputs are integers.
    #[test]
    fn float_twin_bit_exact(stream in stream_strategy(), gs in 1usize..5) {
        let sched = ScaleSchedule::calibrate(
            std::slice::from_ref(&stream),
            Bitwidth::INT8,
            GroupSize::new(gs),
        );
        let fsched = FloatScaleSchedule::new(
            sched.scales().iter().map(|s| s.scale()).collect(),
            Bitwidth::INT8,
        );
        let float_tiles: Vec<_> = stream.iter().map(|t| t.to_f32()).collect();
        let int_run = grouped_apsq(&stream, &sched, &ApsqConfig::int8(gs));
        let f_out = grouped_apsq_f32(&float_tiles, &fsched, GroupSize::new(gs));
        for (a, b) in int_run.output.data().iter().zip(f_out.data()) {
            prop_assert_eq!(*a, *b as i32);
        }
    }

    /// The engine-driven streamed GEMM fold agrees with the batch API run
    /// over collected PSUM tiles — same output, same code bank, same
    /// traffic — for every group size, tile size, and thread count.
    #[test]
    fn streamed_equals_batch_for_all_group_sizes(
        (m, k, n) in (1usize..6, 2usize..40, 1usize..6),
        k_tile in 1usize..12,
        gs in 1usize..9,
        threads in 1usize..5,
        seed in any::<u32>(),
    ) {
        let a = Int8Tensor::from_vec(
            (0..m * k).map(|x| ((x as u32).wrapping_mul(37).wrapping_add(seed) % 255) as i8).collect(),
            [m, k],
        );
        let b = Int8Tensor::from_vec(
            (0..k * n).map(|x| ((x as u32).wrapping_mul(73).wrapping_add(seed / 3) % 251) as i8).collect(),
            [k, n],
        );
        let tiles = int8_matmul_psum_tiles(&a, &b, k_tile);
        let sched = ScaleSchedule::calibrate(
            std::slice::from_ref(&tiles),
            Bitwidth::INT8,
            GroupSize::new(gs),
        );
        let cfg = ApsqConfig { bits: Bitwidth::INT8, group_size: GroupSize::new(gs) };
        let batch = grouped_apsq(&tiles, &sched, &cfg);
        let streamed = grouped_apsq_streamed(
            &ExecEngine::with_threads(threads).with_spawn_threshold(0),
            &a, &b, k_tile, &sched, &cfg,
        );
        prop_assert_eq!(streamed.output, batch.output);
        prop_assert_eq!(streamed.stored_codes, batch.stored_codes);
        prop_assert_eq!(streamed.traffic, batch.traffic);
    }

    /// Calibrated schedules never clip: the dequantized range covers the
    /// exact partial results seen during the run.
    #[test]
    fn calibrated_run_is_deterministic(stream in stream_strategy(), gs in 1usize..5) {
        let sched = ScaleSchedule::calibrate(
            std::slice::from_ref(&stream),
            Bitwidth::INT8,
            GroupSize::new(gs),
        );
        let a = grouped_apsq(&stream, &sched, &ApsqConfig::int8(gs));
        let b = grouped_apsq(&stream, &sched, &ApsqConfig::int8(gs));
        prop_assert_eq!(a.output, b.output);
        prop_assert_eq!(a.stored_codes, b.stored_codes);
    }
}
