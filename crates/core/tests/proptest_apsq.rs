//! Property-based tests for the APSQ algorithm invariants.

use apsq_core::{
    apsq_recursion_reference, exact_accumulate, grouped_apsq, grouped_apsq_f32, ApsqConfig,
    FloatScaleSchedule, GroupSize, ScaleSchedule,
};
use apsq_quant::Bitwidth;
use apsq_tensor::Int32Tensor;
use proptest::prelude::*;

fn stream_strategy() -> impl Strategy<Value = Vec<Int32Tensor>> {
    (1usize..12, 1usize..16).prop_flat_map(|(np, numel)| {
        proptest::collection::vec(
            proptest::collection::vec(-20_000i32..20_000, numel..=numel),
            np..=np,
        )
        .prop_map(move |tiles| {
            tiles
                .into_iter()
                .map(|v| Int32Tensor::from_vec(v, [numel]))
                .collect()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// gs = 1 must reduce exactly to the eq (10) recursion.
    #[test]
    fn gs1_equals_eq10(stream in stream_strategy()) {
        let sched = ScaleSchedule::calibrate(
            std::slice::from_ref(&stream),
            Bitwidth::INT8,
            GroupSize::new(1),
        );
        let run = grouped_apsq(&stream, &sched, &ApsqConfig::int8(1));
        let reference = apsq_recursion_reference(&stream, &sched);
        prop_assert_eq!(run.output, reference);
    }

    /// Buffer traffic is independent of group size: np·numel writes and
    /// (np−1)·numel reads, exactly (paper Section III-B).
    #[test]
    fn traffic_invariant(stream in stream_strategy(), gs in 1usize..9) {
        let np = stream.len() as u64;
        let numel = stream[0].numel() as u64;
        let sched = ScaleSchedule::calibrate(
            std::slice::from_ref(&stream),
            Bitwidth::INT8,
            GroupSize::new(gs),
        );
        let run = grouped_apsq(&stream, &sched, &ApsqConfig::int8(gs));
        prop_assert_eq!(run.traffic.writes, np * numel);
        prop_assert_eq!(run.traffic.reads, (np - 1) * numel);
    }

    /// Every stored code must fit the configured bit-width.
    #[test]
    fn stored_codes_fit_bitwidth(stream in stream_strategy(), gs in 1usize..6, bits in 3u8..9) {
        let b = Bitwidth::new(bits);
        let sched = ScaleSchedule::calibrate(
            std::slice::from_ref(&stream),
            b,
            GroupSize::new(gs),
        );
        let run = grouped_apsq(&stream, &sched, &ApsqConfig { bits: b, group_size: GroupSize::new(gs) });
        let r = b.signed_range();
        for codes in &run.stored_codes {
            for &c in codes {
                prop_assert!(r.contains(c), "code {} escapes {}", c, b);
            }
        }
    }

    /// With calibrated (non-clipping) scales, the APSQ output error vs the
    /// exact sum is bounded by the sum of per-step half-steps.
    #[test]
    fn error_bounded_by_accumulated_rounding(stream in stream_strategy(), gs in 1usize..5) {
        let sched = ScaleSchedule::calibrate(
            std::slice::from_ref(&stream),
            Bitwidth::INT8,
            GroupSize::new(gs),
        );
        let run = grouped_apsq(&stream, &sched, &ApsqConfig::int8(gs));
        let exact = exact_accumulate(&stream);
        // Worst case: each of the np quantizations contributes α_i/2, and
        // every earlier error can be carried through later requantization.
        let bound: i64 = sched
            .scales()
            .iter()
            .map(|s| (1i64 << s.exponent()) / 2 + 1)
            .sum::<i64>()
            * 2; // slack for error propagation through requantization
        for (a, e) in run.output.data().iter().zip(exact.data()) {
            prop_assert!(
                ((*a as i64) - (*e as i64)).abs() <= bound,
                "err {} exceeds bound {}",
                (*a as i64) - (*e as i64),
                bound
            );
        }
    }

    /// The float fake-quant twin agrees bit-for-bit with the integer golden
    /// model when scales are powers of two and inputs are integers.
    #[test]
    fn float_twin_bit_exact(stream in stream_strategy(), gs in 1usize..5) {
        let sched = ScaleSchedule::calibrate(
            std::slice::from_ref(&stream),
            Bitwidth::INT8,
            GroupSize::new(gs),
        );
        let fsched = FloatScaleSchedule::new(
            sched.scales().iter().map(|s| s.scale()).collect(),
            Bitwidth::INT8,
        );
        let float_tiles: Vec<_> = stream.iter().map(|t| t.to_f32()).collect();
        let int_run = grouped_apsq(&stream, &sched, &ApsqConfig::int8(gs));
        let f_out = grouped_apsq_f32(&float_tiles, &fsched, GroupSize::new(gs));
        for (a, b) in int_run.output.data().iter().zip(f_out.data()) {
            prop_assert_eq!(*a, *b as i32);
        }
    }

    /// Calibrated schedules never clip: the dequantized range covers the
    /// exact partial results seen during the run.
    #[test]
    fn calibrated_run_is_deterministic(stream in stream_strategy(), gs in 1usize..5) {
        let sched = ScaleSchedule::calibrate(
            std::slice::from_ref(&stream),
            Bitwidth::INT8,
            GroupSize::new(gs),
        );
        let a = grouped_apsq(&stream, &sched, &ApsqConfig::int8(gs));
        let b = grouped_apsq(&stream, &sched, &ApsqConfig::int8(gs));
        prop_assert_eq!(a.output, b.output);
        prop_assert_eq!(a.stored_codes, b.stored_codes);
    }
}
