//! The grouped APSQ algorithm (paper Algorithm 1) in the exact integer
//! domain — the software golden model the RAE hardware must match
//! bit-for-bit.

use crate::config::ApsqConfig;
#[cfg(test)]
use crate::config::GroupSize;
use crate::schedule::ScaleSchedule;
use crate::traffic::BufferTraffic;
use apsq_tensor::Int32Tensor;

/// Result of running grouped APSQ over one PSUM tile stream.
#[derive(Clone, Debug)]
pub struct ApsqRun {
    /// The dequantized output tile `To` (i32 domain, scale applied).
    pub output: Int32Tensor,
    /// Every stored INT8 code tile `AP*_i`, in step order (useful for
    /// verifying hardware bank contents).
    pub stored_codes: Vec<Vec<i32>>,
    /// PSUM-buffer traffic incurred, in words.
    pub traffic: BufferTraffic,
}

/// Executes Algorithm 1 (grouped APSQ) over a stream of i32 PSUM tiles.
///
/// Semantics per step `i` (with `gs = config.group_size`):
///
/// - `i ≡ 0 (mod gs)` — **APSQ step** (Algorithm 1 lines 4–7): read the
///   previous group's `gs` stored codes, dequantize each with its own step
///   scale, add the current tile `Tp_i`, quantize with `α_i` and store.
///   At `i = 0` there is no previous group and `AP*_0 = Q⁰(Tp_0)`.
/// - otherwise, `i < np−1` — **PSQ step** (lines 9–11): quantize `Tp_i`
///   alone and store.
/// - `i = np−1` not on a group boundary — **final step** (lines 13–14):
///   read the current group's stored prefix (`np−1−group_start` codes),
///   dequantize, add `Tp_{np−1}`, quantize, and dequantize into `To`.
///
/// With `gs = 1` every step is an APSQ step and the recursion reduces
/// exactly to eq (10). With `gs ≥ np` every tile is quantized once and
/// accumulated once at the end — pure PSUM quantization (PSQ, paper refs 19 and 20
/// of the paper) with low-bit storage.
///
/// The paper's Algorithm 1 line 13 contains an off-by-one (`np − i + 1`
/// reads); this implementation reads the consistent `np − 1 − group_start`
/// stored codes, which reduces to eq (10) at `gs = 1` (see DESIGN.md).
///
/// # Panics
///
/// Panics if `tiles` is empty, tiles have mismatched shapes, or
/// `schedule.len() != tiles.len()`.
///
/// # Examples
///
/// ```
/// use apsq_core::{grouped_apsq, ApsqConfig, ScaleSchedule};
/// use apsq_quant::Bitwidth;
/// use apsq_tensor::Int32Tensor;
///
/// let tiles = vec![
///     Int32Tensor::from_vec(vec![100, -50], [2]),
///     Int32Tensor::from_vec(vec![30, 20], [2]),
/// ];
/// let sched = ScaleSchedule::calibrate(
///     std::slice::from_ref(&tiles),
///     Bitwidth::INT8,
///     apsq_core::GroupSize::new(1),
/// );
/// let run = grouped_apsq(&tiles, &sched, &ApsqConfig::int8(1));
/// assert_eq!(run.output.dims(), &[2]);
/// ```
pub fn grouped_apsq(
    tiles: &[Int32Tensor],
    schedule: &ScaleSchedule,
    config: &ApsqConfig,
) -> ApsqRun {
    let np = tiles.len();
    assert!(np > 0, "grouped_apsq requires at least one PSUM tile");
    assert_eq!(
        schedule.len(),
        np,
        "schedule covers {} steps but {} tiles were given",
        schedule.len(),
        np
    );
    assert!(
        tiles.iter().all(|t| t.shape() == tiles[0].shape()),
        "all PSUM tiles must share one shape"
    );

    // One incremental step per tile — `StreamingApsq` IS the algorithm;
    // this batch entry point just drives it, so the push-based and batch
    // APIs stay bit-identical by construction.
    let mut stream = crate::streaming::StreamingApsq::new(schedule.clone(), *config);
    for tile in tiles {
        stream.push_ref(tile);
    }
    stream.finish()
}

/// The pure eq (10) recursion (`gs = 1`), written independently of
/// [`grouped_apsq`] as a cross-check:
/// `AP_i = Qᵢ(Tp_i + α_{i−1}·AP_{i−1})`, `AP_0 = Q₀(Tp_0)`,
/// `To = α_{np−1}·AP_{np−1}`.
///
/// # Panics
///
/// Panics if `tiles` is empty or `schedule.len() != tiles.len()`.
pub fn apsq_recursion_reference(tiles: &[Int32Tensor], schedule: &ScaleSchedule) -> Int32Tensor {
    let np = tiles.len();
    assert!(np > 0, "requires at least one PSUM tile");
    assert_eq!(schedule.len(), np, "schedule length mismatch");
    let numel = tiles[0].numel();

    let mut prev_codes: Vec<i32> = tiles[0]
        .data()
        .iter()
        .map(|&v| schedule.scale(0).quantize(v))
        .collect();
    // `i` is the algorithm's PSUM step number, not a slice cursor.
    #[allow(clippy::needless_range_loop)]
    for i in 1..np {
        let prev_scale = schedule.scale(i - 1);
        let scale = schedule.scale(i);
        let mut next = Vec::with_capacity(numel);
        for (idx, &t) in tiles[i].data().iter().enumerate() {
            let deq = prev_scale.dequantize(prev_codes[idx]) as i64 + t as i64;
            next.push(scale.quantize(clamp_i64(deq)));
        }
        prev_codes = next;
    }
    let last = schedule.scale(np - 1);
    Int32Tensor::from_vec(
        prev_codes.iter().map(|&c| last.dequantize(c)).collect(),
        tiles[0].shape().clone(),
    )
}

pub(crate) fn clamp_i64(v: i64) -> i32 {
    v.clamp(i32::MIN as i64, i32::MAX as i64) as i32
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsq_quant::Bitwidth;

    fn tiles_from(vals: &[&[i32]]) -> Vec<Int32Tensor> {
        vals.iter()
            .map(|v| Int32Tensor::from_vec(v.to_vec(), [v.len()]))
            .collect()
    }

    fn calibrated(tiles: &[Int32Tensor], gs: usize) -> ScaleSchedule {
        ScaleSchedule::calibrate(
            std::slice::from_ref(&tiles.to_vec()),
            Bitwidth::INT8,
            GroupSize::new(gs),
        )
    }

    #[test]
    fn gs1_matches_eq10_reference() {
        let tiles = tiles_from(&[&[100, -30], &[55, 70], &[-20, 10], &[5, -5]]);
        let sched = calibrated(&tiles, 1);
        let run = grouped_apsq(&tiles, &sched, &ApsqConfig::int8(1));
        let reference = apsq_recursion_reference(&tiles, &sched);
        assert_eq!(run.output, reference);
    }

    #[test]
    fn exact_when_scales_are_unit_and_values_small() {
        // With α = 1 everywhere and values far from clipping, APSQ is exact.
        let tiles = tiles_from(&[&[10, -3], &[5, 7], &[-2, 1]]);
        let sched = ScaleSchedule::uniform(3, 0, Bitwidth::INT8);
        for gs in 1..=4 {
            let run = grouped_apsq(&tiles, &sched, &ApsqConfig::int8(gs));
            assert_eq!(run.output.data(), &[13, 5], "gs={gs}");
        }
    }

    #[test]
    fn traffic_independent_of_group_size() {
        // Paper Section III-B: total reads/writes match for gs = 1 and gs > 1.
        let tiles = tiles_from(&[
            &[100, 2],
            &[50, -3],
            &[25, 4],
            &[12, -5],
            &[6, 6],
            &[3, -7],
            &[2, 8],
            &[1, -9],
        ]);
        let mut traffics = Vec::new();
        for gs in [1usize, 2, 3, 4, 8] {
            let sched = calibrated(&tiles, gs);
            let run = grouped_apsq(&tiles, &sched, &ApsqConfig::int8(gs));
            traffics.push((gs, run.traffic));
        }
        let first = traffics[0].1;
        for (gs, t) in traffics {
            assert_eq!(t, first, "traffic changed at gs={gs}");
        }
        // np tiles × numel writes; (np−1) × numel reads.
        assert_eq!(first.writes, 8 * 2);
        assert_eq!(first.reads, 7 * 2);
    }

    #[test]
    fn larger_groups_reduce_error_on_random_like_stream() {
        // The cumulative value is requantized np/gs times, so error shrinks
        // as gs grows. Construct a stream with non-trivial rounding error.
        let vals: Vec<Vec<i32>> = (0..12)
            .map(|i| (0..16).map(|j| ((i * 37 + j * 101) % 513) - 256).collect())
            .collect();
        let tiles: Vec<Int32Tensor> = vals
            .iter()
            .map(|v| Int32Tensor::from_vec(v.clone(), [v.len()]))
            .collect();
        let exact: Vec<i64> = (0..16)
            .map(|j| vals.iter().map(|t| t[j] as i64).sum())
            .collect();

        let mut errors = Vec::new();
        for gs in [1usize, 4, 12] {
            let sched = calibrated(&tiles, gs);
            let run = grouped_apsq(&tiles, &sched, &ApsqConfig::int8(gs));
            let err: f64 = run
                .output
                .data()
                .iter()
                .zip(exact.iter())
                .map(|(&a, &e)| ((a as i64 - e) as f64).powi(2))
                .sum::<f64>()
                .sqrt();
            errors.push(err);
        }
        assert!(
            errors[0] >= errors[2],
            "gs=1 error {} should be >= gs=12 error {}",
            errors[0],
            errors[2]
        );
    }

    #[test]
    fn final_tile_on_group_boundary() {
        // np = 5, gs = 4: final tile index 4 IS a group boundary (APSQ step).
        let tiles = tiles_from(&[&[100], &[50], &[25], &[12], &[6]]);
        let sched = calibrated(&tiles, 4);
        let run = grouped_apsq(&tiles, &sched, &ApsqConfig::int8(4));
        // Output must approximate the exact sum 193.
        let out = run.output.data()[0];
        assert!((out - 193).abs() <= 16, "out={out}");
        assert_eq!(run.stored_codes.len(), 5);
    }

    #[test]
    fn single_tile_stream() {
        let tiles = tiles_from(&[&[77]]);
        let sched = calibrated(&tiles, 3);
        let run = grouped_apsq(&tiles, &sched, &ApsqConfig::int8(3));
        assert_eq!(run.output.data()[0], 77);
        assert_eq!(run.traffic.reads, 0);
        assert_eq!(run.traffic.writes, 1);
    }

    #[test]
    fn gs_at_least_np_is_pure_psq() {
        // Every tile quantized once, one final accumulation: with exact
        // unit scales this equals the exact sum.
        let tiles = tiles_from(&[&[9], &[-4], &[7], &[3]]);
        let sched = ScaleSchedule::uniform(4, 0, Bitwidth::INT8);
        let run = grouped_apsq(&tiles, &sched, &ApsqConfig::int8(16));
        assert_eq!(run.output.data()[0], 15);
        // Reads only happen at the final fold: np−1 of them.
        assert_eq!(run.traffic.reads, 3);
    }

    #[test]
    #[should_panic(expected = "at least one PSUM tile")]
    fn empty_stream_rejected() {
        grouped_apsq(
            &[],
            &ScaleSchedule::uniform(1, 0, Bitwidth::INT8),
            &ApsqConfig::int8(1),
        );
    }

    #[test]
    #[should_panic(expected = "schedule covers")]
    fn schedule_length_mismatch_rejected() {
        let tiles = tiles_from(&[&[1], &[2]]);
        grouped_apsq(
            &tiles,
            &ScaleSchedule::uniform(3, 0, Bitwidth::INT8),
            &ApsqConfig::int8(1),
        );
    }
}
