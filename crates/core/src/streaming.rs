//! Incremental (push-based) grouped APSQ, for simulators that produce PSUM
//! tiles one accumulation step at a time.

use crate::config::ApsqConfig;
use crate::grouped::{grouped_apsq, ApsqRun};
use crate::schedule::ScaleSchedule;
use apsq_tensor::Int32Tensor;

/// A push-based wrapper over [`grouped_apsq`] with identical semantics:
/// feed PSUM tiles in accumulation order with [`StreamingApsq::push`], then
/// call [`StreamingApsq::finish`] once all `schedule.len()` tiles have
/// arrived.
///
/// # Examples
///
/// ```
/// use apsq_core::{ApsqConfig, ScaleSchedule, StreamingApsq};
/// use apsq_quant::Bitwidth;
/// use apsq_tensor::Int32Tensor;
///
/// let sched = ScaleSchedule::uniform(2, 0, Bitwidth::INT8);
/// let mut s = StreamingApsq::new(sched, ApsqConfig::int8(1));
/// s.push(Int32Tensor::from_vec(vec![10], [1]));
/// s.push(Int32Tensor::from_vec(vec![5], [1]));
/// let run = s.finish();
/// assert_eq!(run.output.data(), &[15]);
/// ```
#[derive(Clone, Debug)]
pub struct StreamingApsq {
    schedule: ScaleSchedule,
    config: ApsqConfig,
    tiles: Vec<Int32Tensor>,
}

impl StreamingApsq {
    /// Creates a stream expecting `schedule.len()` tiles.
    pub fn new(schedule: ScaleSchedule, config: ApsqConfig) -> Self {
        let np = schedule.len();
        StreamingApsq {
            schedule,
            config,
            tiles: Vec::with_capacity(np),
        }
    }

    /// Number of tiles pushed so far.
    pub fn steps_taken(&self) -> usize {
        self.tiles.len()
    }

    /// Number of tiles expected in total.
    pub fn steps_expected(&self) -> usize {
        self.schedule.len()
    }

    /// Pushes the next PSUM tile.
    ///
    /// # Panics
    ///
    /// Panics if more tiles are pushed than the schedule covers, or if the
    /// tile shape differs from the first tile's.
    pub fn push(&mut self, tile: Int32Tensor) {
        assert!(
            self.tiles.len() < self.schedule.len(),
            "stream already received all {} tiles",
            self.schedule.len()
        );
        if let Some(first) = self.tiles.first() {
            assert_eq!(
                first.shape(),
                tile.shape(),
                "all PSUM tiles must share one shape"
            );
        }
        self.tiles.push(tile);
    }

    /// Completes the stream and returns the APSQ result.
    ///
    /// # Panics
    ///
    /// Panics if fewer tiles were pushed than the schedule covers.
    pub fn finish(self) -> ApsqRun {
        assert_eq!(
            self.tiles.len(),
            self.schedule.len(),
            "stream received {} of {} tiles",
            self.tiles.len(),
            self.schedule.len()
        );
        grouped_apsq(&self.tiles, &self.schedule, &self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsq_quant::Bitwidth;

    #[test]
    fn matches_batch_api() {
        let tiles: Vec<Int32Tensor> = (0..6)
            .map(|i| Int32Tensor::from_vec(vec![i * 100 - 250, 37 * i], [2]))
            .collect();
        let sched = ScaleSchedule::calibrate(
            std::slice::from_ref(&tiles),
            Bitwidth::INT8,
            crate::GroupSize::new(2),
        );
        let batch = grouped_apsq(&tiles, &sched, &ApsqConfig::int8(2));
        let mut s = StreamingApsq::new(sched, ApsqConfig::int8(2));
        for t in &tiles {
            s.push(t.clone());
        }
        let run = s.finish();
        assert_eq!(run.output, batch.output);
        assert_eq!(run.traffic, batch.traffic);
    }

    #[test]
    #[should_panic(expected = "already received")]
    fn too_many_pushes() {
        let sched = ScaleSchedule::uniform(1, 0, Bitwidth::INT8);
        let mut s = StreamingApsq::new(sched, ApsqConfig::int8(1));
        s.push(Int32Tensor::zeros([1]));
        s.push(Int32Tensor::zeros([1]));
    }

    #[test]
    #[should_panic(expected = "received 1 of 2")]
    fn too_few_pushes() {
        let sched = ScaleSchedule::uniform(2, 0, Bitwidth::INT8);
        let mut s = StreamingApsq::new(sched, ApsqConfig::int8(1));
        s.push(Int32Tensor::zeros([1]));
        s.finish();
    }
}
