//! Incremental (push-based) grouped APSQ, for simulators and execution
//! engines that produce PSUM tiles one accumulation step at a time.

use crate::config::ApsqConfig;
use crate::grouped::ApsqRun;
use crate::schedule::ScaleSchedule;
use crate::traffic::BufferTraffic;
use apsq_tensor::{ExecEngine, Int32Tensor, Int8Tensor};

/// A truly incremental implementation of Algorithm 1 (grouped APSQ):
/// each [`StreamingApsq::push`] executes one algorithm step immediately,
/// so only the INT8 code bank — the state the hardware itself keeps — is
/// retained between steps. The incoming PSUM tiles are **not** collected;
/// peak tile memory is one tile regardless of stream length.
///
/// [`crate::grouped_apsq`] is a thin batch wrapper over this type, so the
/// two stay bit-identical by construction.
///
/// # Examples
///
/// ```
/// use apsq_core::{ApsqConfig, ScaleSchedule, StreamingApsq};
/// use apsq_quant::Bitwidth;
/// use apsq_tensor::Int32Tensor;
///
/// let sched = ScaleSchedule::uniform(2, 0, Bitwidth::INT8);
/// let mut s = StreamingApsq::new(sched, ApsqConfig::int8(1));
/// s.push(Int32Tensor::from_vec(vec![10], [1]));
/// s.push(Int32Tensor::from_vec(vec![5], [1]));
/// let run = s.finish();
/// assert_eq!(run.output.data(), &[15]);
/// ```
#[derive(Clone, Debug)]
pub struct StreamingApsq {
    schedule: ScaleSchedule,
    config: ApsqConfig,
    step: usize,
    shape: Option<apsq_tensor::Shape>,
    stored_codes: Vec<Vec<i32>>,
    traffic: BufferTraffic,
    output: Option<Int32Tensor>,
}

impl StreamingApsq {
    /// Creates a stream expecting `schedule.len()` tiles.
    pub fn new(schedule: ScaleSchedule, config: ApsqConfig) -> Self {
        let np = schedule.len();
        StreamingApsq {
            schedule,
            config,
            step: 0,
            shape: None,
            stored_codes: Vec::with_capacity(np),
            traffic: BufferTraffic::new(),
            output: None,
        }
    }

    /// Number of tiles pushed so far.
    pub fn steps_taken(&self) -> usize {
        self.step
    }

    /// Number of tiles expected in total.
    pub fn steps_expected(&self) -> usize {
        self.schedule.len()
    }

    /// Pushes the next PSUM tile.
    ///
    /// # Panics
    ///
    /// Panics if more tiles are pushed than the schedule covers, or if the
    /// tile shape differs from the first tile's.
    pub fn push(&mut self, tile: Int32Tensor) {
        self.push_ref(&tile);
    }

    /// Pushes the next PSUM tile by reference — the zero-copy entry point
    /// for engines that stream tiles through one reusable buffer
    /// ([`ExecEngine::int8_for_each_k_tile`]).
    ///
    /// # Panics
    ///
    /// Same conditions as [`StreamingApsq::push`].
    pub fn push_ref(&mut self, tile: &Int32Tensor) {
        let np = self.schedule.len();
        assert!(self.step < np, "stream already received all {} tiles", np);
        match &self.shape {
            Some(shape) => assert_eq!(shape, tile.shape(), "all PSUM tiles must share one shape"),
            None => self.shape = Some(tile.shape().clone()),
        }
        let numel = tile.numel();
        let gs = self.config.group_size.get();
        let i = self.step;
        let is_apsq_step = i.is_multiple_of(gs);
        let is_final = i == np - 1;
        let scale = self.schedule.scale(i);

        // The per-tile inner loops below all run through the branch-free
        // slice epilogues in `apsq-quant` (`quantize_clamped_i64_into`,
        // `dequantize_accumulate`), which are bit-identical to the scalar
        // `quantize`/`dequantize` maps — `apsq_recursion_reference` stays
        // scalar on purpose as the cross-check.
        if is_apsq_step {
            // Lines 4–7: accumulate the previous group (if any) + Tp_i.
            // Seeding the accumulator from the tile instead of zeroing it
            // saves a whole pass; integer adds make the regrouping exact.
            let mut acc: Vec<i64> = tile.data().iter().map(|&t| t as i64).collect();
            if i > 0 {
                for l in i - gs..i {
                    let ls = self.schedule.scale(l);
                    ls.dequantize_accumulate(&self.stored_codes[l], &mut acc);
                    self.traffic.reads += numel as u64;
                }
            }
            let mut codes = Vec::new();
            scale.quantize_clamped_i64_into(&acc, &mut codes);
            self.traffic.writes += numel as u64;
            if is_final {
                self.output = Some(dequant_tile(&codes, scale, tile));
            }
            self.stored_codes.push(codes);
        } else if !is_final {
            // Lines 9–11: plain PSUM quantization of Tp_i.
            let mut codes = Vec::new();
            scale.quantize_slice_into(tile.data(), &mut codes);
            self.traffic.writes += numel as u64;
            self.stored_codes.push(codes);
        } else {
            // Lines 13–14: final tile inside a group — fold the stored
            // group prefix with Tp_{np−1} and produce To.
            let group_start = (i / gs) * gs;
            let mut acc: Vec<i64> = tile.data().iter().map(|&t| t as i64).collect();
            for l in group_start..i {
                let ls = self.schedule.scale(l);
                ls.dequantize_accumulate(&self.stored_codes[l], &mut acc);
                self.traffic.reads += numel as u64;
            }
            let mut codes = Vec::new();
            scale.quantize_clamped_i64_into(&acc, &mut codes);
            self.traffic.writes += numel as u64;
            self.output = Some(dequant_tile(&codes, scale, tile));
            self.stored_codes.push(codes);
        }
        self.step += 1;
    }

    /// Completes the stream and returns the APSQ result.
    ///
    /// # Panics
    ///
    /// Panics if fewer tiles were pushed than the schedule covers.
    pub fn finish(self) -> ApsqRun {
        assert_eq!(
            self.step,
            self.schedule.len(),
            "stream received {} of {} tiles",
            self.step,
            self.schedule.len()
        );
        ApsqRun {
            output: self
                .output
                .expect("final step always produces the output tile"),
            stored_codes: self.stored_codes,
            traffic: self.traffic,
        }
    }
}

fn dequant_tile(codes: &[i32], scale: apsq_quant::Pow2Scale, like: &Int32Tensor) -> Int32Tensor {
    let mut out = Vec::new();
    scale.dequantize_slice_into(codes, &mut out);
    Int32Tensor::from_vec(out, like.shape().clone())
}

/// Grouped APSQ folded directly into the K loop of an INT8 GEMM: the
/// engine streams each `Pci`-deep PSUM tile of `a · b` through one
/// reusable buffer, and each tile is quantized/accumulated the moment it
/// is produced — no `Vec<Int32Tensor>` is ever materialized. This is the
/// software shape of the RAE sitting next to the PE array.
///
/// Produces exactly the same [`ApsqRun`] as running [`crate::grouped_apsq`]
/// over [`apsq_tensor::int8_matmul_psum_tiles`] (verified by property
/// tests), for every group size and engine thread count.
///
/// # Panics
///
/// Panics if operands are not rank-2, inner dims disagree, `k_tile == 0`,
/// or `schedule.len() != ceil(K / k_tile)`.
///
/// # Examples
///
/// ```
/// use apsq_core::{grouped_apsq, grouped_apsq_streamed, ApsqConfig, GroupSize, ScaleSchedule};
/// use apsq_quant::Bitwidth;
/// use apsq_tensor::{int8_matmul_psum_tiles, ExecEngine, Int8Tensor};
///
/// let a = Int8Tensor::from_vec((0..4 * 16).map(|x| (x % 17) as i8 - 8).collect(), [4, 16]);
/// let b = Int8Tensor::from_vec((0..16 * 3).map(|x| (x % 11) as i8 - 5).collect(), [16, 3]);
/// let tiles = int8_matmul_psum_tiles(&a, &b, 4);
/// let sched = ScaleSchedule::calibrate(
///     std::slice::from_ref(&tiles),
///     Bitwidth::INT8,
///     GroupSize::new(2),
/// );
/// let batch = grouped_apsq(&tiles, &sched, &ApsqConfig::int8(2));
/// let streamed = grouped_apsq_streamed(
///     &ExecEngine::serial(), &a, &b, 4, &sched, &ApsqConfig::int8(2),
/// );
/// assert_eq!(streamed.output, batch.output);
/// ```
pub fn grouped_apsq_streamed(
    engine: &ExecEngine,
    a: &Int8Tensor,
    b: &Int8Tensor,
    k_tile: usize,
    schedule: &ScaleSchedule,
    config: &ApsqConfig,
) -> ApsqRun {
    assert!(k_tile > 0, "k_tile must be positive");
    let k = a.dims()[1];
    let np = k.div_ceil(k_tile);
    assert_eq!(
        schedule.len(),
        np,
        "schedule covers {} steps but the GEMM produces {} PSUM tiles",
        schedule.len(),
        np
    );
    let mut stream = StreamingApsq::new(schedule.clone(), *config);
    engine.int8_for_each_k_tile(a, b, k_tile, |_, tile| stream.push_ref(tile));
    stream.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouped::grouped_apsq;
    use apsq_quant::Bitwidth;

    #[test]
    fn matches_batch_api() {
        let tiles: Vec<Int32Tensor> = (0..6)
            .map(|i| Int32Tensor::from_vec(vec![i * 100 - 250, 37 * i], [2]))
            .collect();
        let sched = ScaleSchedule::calibrate(
            std::slice::from_ref(&tiles),
            Bitwidth::INT8,
            crate::GroupSize::new(2),
        );
        let batch = grouped_apsq(&tiles, &sched, &ApsqConfig::int8(2));
        let mut s = StreamingApsq::new(sched, ApsqConfig::int8(2));
        for t in &tiles {
            s.push(t.clone());
        }
        let run = s.finish();
        assert_eq!(run.output, batch.output);
        assert_eq!(run.traffic, batch.traffic);
    }

    #[test]
    fn streamed_gemm_matches_batch_over_collected_tiles() {
        let a = Int8Tensor::from_vec(
            (0..8 * 48).map(|x| ((x * 37) % 255) as i8).collect(),
            [8, 48],
        );
        let b = Int8Tensor::from_vec(
            (0..48 * 6).map(|x| ((x * 73) % 251) as i8).collect(),
            [48, 6],
        );
        for (k_tile, gs) in [(8usize, 1usize), (8, 2), (8, 4), (8, 6), (7, 3), (48, 1)] {
            let tiles = apsq_tensor::int8_matmul_psum_tiles(&a, &b, k_tile);
            let sched = ScaleSchedule::calibrate(
                std::slice::from_ref(&tiles),
                Bitwidth::INT8,
                crate::GroupSize::new(gs),
            );
            let cfg = ApsqConfig::int8(gs);
            let batch = grouped_apsq(&tiles, &sched, &cfg);
            for threads in [1usize, 4] {
                let eng = ExecEngine::with_threads(threads).with_spawn_threshold(0);
                let run = grouped_apsq_streamed(&eng, &a, &b, k_tile, &sched, &cfg);
                assert_eq!(run.output, batch.output, "k_tile={k_tile} gs={gs}");
                assert_eq!(run.stored_codes, batch.stored_codes);
                assert_eq!(run.traffic, batch.traffic);
            }
        }
    }

    #[test]
    #[should_panic(expected = "already received")]
    fn too_many_pushes() {
        let sched = ScaleSchedule::uniform(1, 0, Bitwidth::INT8);
        let mut s = StreamingApsq::new(sched, ApsqConfig::int8(1));
        s.push(Int32Tensor::zeros([1]));
        s.push(Int32Tensor::zeros([1]));
    }

    #[test]
    #[should_panic(expected = "received 1 of 2")]
    fn too_few_pushes() {
        let sched = ScaleSchedule::uniform(2, 0, Bitwidth::INT8);
        let mut s = StreamingApsq::new(sched, ApsqConfig::int8(1));
        s.push(Int32Tensor::zeros([1]));
        s.finish();
    }

    #[test]
    #[should_panic(expected = "share one shape")]
    fn shape_drift_rejected() {
        let sched = ScaleSchedule::uniform(2, 0, Bitwidth::INT8);
        let mut s = StreamingApsq::new(sched, ApsqConfig::int8(1));
        s.push(Int32Tensor::zeros([2]));
        s.push(Int32Tensor::zeros([3]));
    }

    #[test]
    #[should_panic(expected = "schedule covers")]
    fn streamed_schedule_mismatch_rejected() {
        let a = Int8Tensor::zeros([2, 8]);
        let b = Int8Tensor::zeros([8, 2]);
        grouped_apsq_streamed(
            &ExecEngine::serial(),
            &a,
            &b,
            4,
            &ScaleSchedule::uniform(3, 0, Bitwidth::INT8),
            &ApsqConfig::int8(1),
        );
    }
}
