//! Error analysis utilities and synthetic PSUM-stream generators.

// lint: allow-file(float-reduction-outside-kernels) -- offline error-analysis helpers; sequential fixed-order loops, never on the worker-parallel datapath

use crate::config::{ApsqConfig, GroupSize};
use crate::grouped::grouped_apsq;
use crate::reference::exact_accumulate;
use crate::schedule::ScaleSchedule;
use apsq_quant::Bitwidth;
use apsq_tensor::Int32Tensor;
use rand::Rng;

/// Mean squared error between a reference and a test signal.
///
/// # Panics
///
/// Panics if lengths differ or are zero.
pub fn mse(reference: &[i32], test: &[i32]) -> f64 {
    assert_eq!(reference.len(), test.len(), "mse: length mismatch");
    assert!(!reference.is_empty(), "mse of empty signals");
    reference
        .iter()
        .zip(test.iter())
        .map(|(&r, &t)| ((r as f64) - (t as f64)).powi(2))
        .sum::<f64>()
        / reference.len() as f64
}

/// Signal-to-quantization-noise ratio in dB:
/// `10·log₁₀(Σ ref² / Σ (ref − test)²)`.
///
/// Returns `f64::INFINITY` when the test equals the reference exactly.
///
/// # Panics
///
/// Panics if lengths differ or are zero.
pub fn sqnr_db(reference: &[i32], test: &[i32]) -> f64 {
    assert_eq!(reference.len(), test.len(), "sqnr_db: length mismatch");
    assert!(!reference.is_empty(), "sqnr of empty signals");
    let sig: f64 = reference.iter().map(|&r| (r as f64).powi(2)).sum();
    let noise: f64 = reference
        .iter()
        .zip(test.iter())
        .map(|(&r, &t)| ((r as f64) - (t as f64)).powi(2))
        .sum();
    if noise == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (sig / noise).log10()
    }
}

/// Maximum absolute error between a reference and a test signal.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn max_abs_err(reference: &[i32], test: &[i32]) -> i64 {
    assert_eq!(reference.len(), test.len(), "max_abs_err: length mismatch");
    reference
        .iter()
        .zip(test.iter())
        .map(|(&r, &t)| ((r as i64) - (t as i64)).abs())
        .max()
        .unwrap_or(0)
}

/// Generates a synthetic PSUM tile stream resembling what a W8A8 PE array
/// produces: each tile's entries are sums of `depth` random i8×i8 products
/// (approximately Gaussian with σ ≈ 74·√depth by the CLT).
///
/// `depth` models the `Pci` accumulation inside one tile.
///
/// # Panics
///
/// Panics if `np`, `numel`, or `depth` is zero.
pub fn synthetic_psum_stream<R: Rng + ?Sized>(
    rng: &mut R,
    np: usize,
    numel: usize,
    depth: usize,
) -> Vec<Int32Tensor> {
    assert!(np > 0 && numel > 0 && depth > 0, "degenerate stream shape");
    (0..np)
        .map(|_| {
            let data: Vec<i32> = (0..numel)
                .map(|_| {
                    (0..depth)
                        .map(|_| {
                            let a = rng.gen_range(-128i32..=127);
                            let w = rng.gen_range(-128i32..=127);
                            a * w
                        })
                        .sum()
                })
                .collect();
            Int32Tensor::from_vec(data, [numel])
        })
        .collect()
}

/// One row of a group-size sweep produced by [`error_vs_group_size`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GroupSweepPoint {
    /// The group size evaluated.
    pub group_size: usize,
    /// SQNR of APSQ output vs exact accumulation, in dB.
    pub sqnr_db: f64,
    /// Mean squared error vs exact accumulation.
    pub mse: f64,
    /// Largest absolute deviation from the exact sum.
    pub max_abs_err: i64,
}

/// Sweeps APSQ over group sizes on a given stream and reports accuracy vs
/// the exact accumulation — the quantitative backbone of the paper's
/// Section IV-B observation that `gs = 1` hurts and grouping recovers.
///
/// Scales are re-calibrated per group size (they see different values).
///
/// # Panics
///
/// Panics if `stream` is empty or `group_sizes` is empty.
pub fn error_vs_group_size(
    stream: &[Int32Tensor],
    bits: Bitwidth,
    group_sizes: &[usize],
) -> Vec<GroupSweepPoint> {
    assert!(!stream.is_empty(), "empty stream");
    assert!(!group_sizes.is_empty(), "no group sizes requested");
    let exact = exact_accumulate(stream);
    group_sizes
        .iter()
        .map(|&gs| {
            let group = GroupSize::new(gs);
            let sched =
                ScaleSchedule::calibrate(std::slice::from_ref(&stream.to_vec()), bits, group);
            let run = grouped_apsq(
                stream,
                &sched,
                &ApsqConfig {
                    bits,
                    group_size: group,
                },
            );
            GroupSweepPoint {
                group_size: gs,
                sqnr_db: sqnr_db(exact.data(), run.output.data()),
                mse: mse(exact.data(), run.output.data()),
                max_abs_err: max_abs_err(exact.data(), run.output.data()),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sqnr_of_identical_signals_is_infinite() {
        assert_eq!(sqnr_db(&[1, 2, 3], &[1, 2, 3]), f64::INFINITY);
    }

    #[test]
    fn sqnr_drops_with_noise() {
        let reference = [1000, -1000, 500];
        let small = [1001, -1001, 501];
        let big = [1100, -900, 600];
        assert!(sqnr_db(&reference, &small) > sqnr_db(&reference, &big));
    }

    #[test]
    fn mse_and_max_err() {
        assert_eq!(mse(&[0, 0], &[3, 4]), 12.5);
        assert_eq!(max_abs_err(&[0, 10], &[3, 4]), 6);
    }

    #[test]
    fn synthetic_stream_statistics() {
        let mut rng = StdRng::seed_from_u64(11);
        let s = synthetic_psum_stream(&mut rng, 4, 256, 8);
        assert_eq!(s.len(), 4);
        assert_eq!(s[0].numel(), 256);
        // CLT: σ ≈ 74·√8 ≈ 209; nearly all mass within 5σ ≈ 1045 — and the
        // absolute bound is 8·16384.
        let max = s
            .iter()
            .flat_map(|t| t.data().iter())
            .map(|v| v.abs())
            .max()
            .unwrap();
        assert!(max <= 8 * 16384);
        assert!(max > 100, "suspiciously small PSUMs: {max}");
    }

    #[test]
    fn sweep_reports_grouping_gains() {
        let mut rng = StdRng::seed_from_u64(5);
        let stream = synthetic_psum_stream(&mut rng, 16, 512, 8);
        let sweep = error_vs_group_size(&stream, Bitwidth::INT8, &[1, 2, 4, 16]);
        assert_eq!(sweep.len(), 4);
        // Requantizing the running sum fewer times cannot hurt on average:
        // gs = 16 (pure PSQ) should beat gs = 1 clearly on this stream.
        let gs1 = sweep[0].sqnr_db;
        let gs16 = sweep[3].sqnr_db;
        assert!(
            gs16 > gs1,
            "expected SQNR(gs=16) {gs16:.1} dB > SQNR(gs=1) {gs1:.1} dB"
        );
    }
}
