//! Analytical error model for grouped APSQ.
//!
//! Under the standard high-resolution assumption — each quantization step
//! contributes independent uniform rounding noise of variance `α²/12` —
//! the output error variance of Algorithm 1 admits a closed form. This
//! module derives it and provides a predicted SQNR, which the tests (and
//! the `ablation_group_size` bench) compare against measurement.
//!
//! ## Derivation
//!
//! Let the stream have `np` tiles and group size `gs`. Walk the algorithm:
//!
//! - every **PSQ step** `j` quantizes tile `Tp_j` once with scale `α_j`:
//!   variance `α_j²/12`, carried into the final output through (possibly
//!   several) later APSQ requantizations;
//! - every **APSQ step** `i > 0` re-quantizes the running sum with `α_i`:
//!   it *adds* fresh rounding noise `α_i²/12` on top of whatever error the
//!   inputs carried (rounding noises are uncorrelated, so variances add);
//! - the **final step** adds one more `α²/12` term.
//!
//! Hence the predicted output error variance is simply the sum over all
//! executed quantization events of `α²/12` — the grouping strategy wins
//! because large `gs` lets most events use the *small per-tile scales*
//! instead of the large running-sum scales.

// lint: allow-file(float-reduction-outside-kernels) -- analytic noise-model sums; sequential fixed-order, single-threaded by construction

use crate::config::GroupSize;
use crate::schedule::ScaleSchedule;

/// Predicted output error variance of one grouped-APSQ run with the given
/// per-step schedule, under the independent-uniform-rounding model.
///
/// # Panics
///
/// Panics if the schedule is empty.
pub fn predicted_error_variance(schedule: &ScaleSchedule, group_size: GroupSize) -> f64 {
    assert!(!schedule.is_empty(), "empty schedule");
    let np = schedule.len();
    let gs = group_size.get();
    let mut var = 0.0f64;
    for i in 0..np {
        let is_apsq_step = i % gs == 0;
        let is_final = i == np - 1;
        // Every step quantizes exactly once; its noise reaches the output
        // unchanged (later requantizations *add* noise rather than rescale
        // it, to first order).
        let alpha = schedule.scale(i).scale() as f64;
        let _ = (is_apsq_step, is_final);
        var += alpha * alpha / 12.0;
    }
    var
}

/// Predicted SQNR (dB) for a signal of the given power (mean square of the
/// exact accumulation) under the schedule.
///
/// # Panics
///
/// Panics if `signal_power` is not positive or the schedule is empty.
pub fn predicted_sqnr_db(
    schedule: &ScaleSchedule,
    group_size: GroupSize,
    signal_power: f64,
) -> f64 {
    assert!(signal_power > 0.0, "signal power must be positive");
    let noise = predicted_error_variance(schedule, group_size);
    10.0 * (signal_power / noise).log10()
}

/// Mean-square signal power of an exact accumulation result.
pub fn signal_power(exact: &apsq_tensor::Int32Tensor) -> f64 {
    if exact.numel() == 0 {
        return 0.0;
    }
    exact
        .data()
        .iter()
        .map(|&v| (v as f64) * (v as f64))
        .sum::<f64>()
        / exact.numel() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{sqnr_db, synthetic_psum_stream};
    use crate::config::ApsqConfig;
    use crate::grouped::grouped_apsq;
    use crate::reference::exact_accumulate;
    use apsq_quant::Bitwidth;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn variance_sums_per_step() {
        let sched = ScaleSchedule::from_exponents(&[2, 0, 0, 2], Bitwidth::INT8);
        // α = 4,1,1,4 → Σα²/12 = (16+1+1+16)/12.
        let v = predicted_error_variance(&sched, GroupSize::new(2));
        assert!((v - 34.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn prediction_tracks_measurement_within_3db() {
        // The high-resolution model should predict measured SQNR within a
        // few dB across group sizes and depths.
        let mut rng = StdRng::seed_from_u64(31);
        for np in [8usize, 32] {
            let stream = synthetic_psum_stream(&mut rng, np, 2048, 8);
            let exact = exact_accumulate(&stream);
            let power = signal_power(&exact);
            for gs in [1usize, 2, 4] {
                let group = GroupSize::new(gs);
                let sched =
                    ScaleSchedule::calibrate(std::slice::from_ref(&stream), Bitwidth::INT8, group);
                let run = grouped_apsq(&stream, &sched, &ApsqConfig::int8(gs));
                let measured = sqnr_db(exact.data(), run.output.data());
                let predicted = predicted_sqnr_db(&sched, group, power);
                assert!(
                    (measured - predicted).abs() < 3.0,
                    "np={np} gs={gs}: measured {measured:.1} dB vs predicted {predicted:.1} dB"
                );
            }
        }
    }

    #[test]
    fn prediction_explains_grouping_gain() {
        // The predicted variance must decrease (or hold) as gs grows,
        // because calibrated per-tile scales are smaller than running-sum
        // scales.
        let mut rng = StdRng::seed_from_u64(37);
        let stream = synthetic_psum_stream(&mut rng, 32, 256, 8);
        let mut last = f64::INFINITY;
        for gs in [1usize, 2, 4, 8] {
            let group = GroupSize::new(gs);
            let sched =
                ScaleSchedule::calibrate(std::slice::from_ref(&stream), Bitwidth::INT8, group);
            let v = predicted_error_variance(&sched, group);
            assert!(v <= last * 1.01, "gs={gs}: variance {v} > previous {last}");
            last = v;
        }
    }

    #[test]
    #[should_panic(expected = "signal power")]
    fn zero_power_rejected() {
        let sched = ScaleSchedule::uniform(2, 0, Bitwidth::INT8);
        predicted_sqnr_db(&sched, GroupSize::new(1), 0.0);
    }
}
