//! Configuration types for the APSQ algorithm.

use apsq_quant::Bitwidth;
use std::fmt;

/// A validated APSQ group size `gs ≥ 1` (paper Section III-B).
///
/// `gs = 1` applies APSQ at every PSUM tile (eq 10); larger groups apply
/// plain PSUM quantization to `gs − 1` tiles and one APSQ accumulation per
/// group. The hardware RAE supports `gs ∈ 1..=4`; the software model allows
/// any positive size.
///
/// # Examples
///
/// ```
/// use apsq_core::GroupSize;
///
/// assert_eq!(GroupSize::new(3).get(), 3);
/// assert!(GroupSize::try_new(0).is_none());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupSize(usize);

impl GroupSize {
    /// Creates a group size.
    ///
    /// # Panics
    ///
    /// Panics if `gs == 0`.
    pub fn new(gs: usize) -> Self {
        Self::try_new(gs).expect("group size must be at least 1")
    }

    /// Creates a group size, returning `None` for 0.
    pub fn try_new(gs: usize) -> Option<Self> {
        (gs >= 1).then_some(GroupSize(gs))
    }

    /// The group size as a plain integer.
    pub fn get(self) -> usize {
        self.0
    }
}

impl fmt::Display for GroupSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gs={}", self.0)
    }
}

/// Full configuration of an APSQ run: storage bit-width and group size.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ApsqConfig {
    /// Bit-width at which additive PSUMs are stored (paper: INT8).
    pub bits: Bitwidth,
    /// Grouping factor (paper: 1..=4).
    pub group_size: GroupSize,
}

impl ApsqConfig {
    /// The paper's headline configuration: INT8 storage.
    pub fn int8(group_size: usize) -> Self {
        ApsqConfig {
            bits: Bitwidth::INT8,
            group_size: GroupSize::new(group_size),
        }
    }
}

impl Default for ApsqConfig {
    fn default() -> Self {
        ApsqConfig::int8(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_size_validation() {
        assert!(GroupSize::try_new(0).is_none());
        assert_eq!(GroupSize::new(4).get(), 4);
        assert_eq!(GroupSize::new(2).to_string(), "gs=2");
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_group_panics() {
        GroupSize::new(0);
    }

    #[test]
    fn default_config_is_paper_operating_point() {
        let c = ApsqConfig::default();
        assert_eq!(c.bits, Bitwidth::INT8);
        assert_eq!(c.group_size.get(), 1);
    }
}
