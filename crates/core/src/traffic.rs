//! Buffer-traffic accounting for PSUM storage.
//!
//! The grouping strategy's key hardware claim (Section III-B) is that the
//! total number of PSUM buffer reads and writes is *independent of `gs`*.
//! These counters make that claim testable.

use std::ops::AddAssign;

/// Read/write traffic to the PSUM (ofmap) buffer, counted in stored words
/// (one word = one quantized PSUM element at the configured bit-width).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BufferTraffic {
    /// Words read from the PSUM buffer.
    pub reads: u64,
    /// Words written to the PSUM buffer.
    pub writes: u64,
}

impl BufferTraffic {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total traffic (reads + writes).
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

impl AddAssign for BufferTraffic {
    fn add_assign(&mut self, rhs: Self) {
        self.reads += rhs.reads;
        self.writes += rhs.writes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates() {
        let mut t = BufferTraffic::new();
        t += BufferTraffic {
            reads: 3,
            writes: 5,
        };
        t += BufferTraffic {
            reads: 1,
            writes: 0,
        };
        assert_eq!(
            t,
            BufferTraffic {
                reads: 4,
                writes: 5
            }
        );
        assert_eq!(t.total(), 9);
    }
}
