//! The float-domain twin of Algorithm 1 used during quantization-aware
//! training (fake quantization).
//!
//! When all scales are powers of two and the inputs are integer-valued, this
//! path agrees **bit-for-bit** with the integer golden model in
//! [`crate::grouped_apsq`] — both round half away from zero.

use crate::config::GroupSize;
use apsq_quant::{Bitwidth, QRange};
use apsq_tensor::Tensor;

/// A per-step scale list for the float APSQ path.
///
/// Scales may be arbitrary positive reals during QAT; export to the integer
/// engine requires snapping them to powers of two (see
/// [`apsq_quant::Pow2LsqQuantizer`]).
#[derive(Clone, Debug, PartialEq)]
pub struct FloatScaleSchedule {
    scales: Vec<f32>,
    bits: Bitwidth,
}

impl FloatScaleSchedule {
    /// Builds a schedule from explicit per-step scales.
    ///
    /// # Panics
    ///
    /// Panics if `scales` is empty or any scale is non-positive/non-finite.
    pub fn new(scales: Vec<f32>, bits: Bitwidth) -> Self {
        assert!(!scales.is_empty(), "schedule must cover at least one step");
        assert!(
            scales.iter().all(|s| s.is_finite() && *s > 0.0),
            "all scales must be positive and finite"
        );
        FloatScaleSchedule { scales, bits }
    }

    /// Calibrates per-step scales from a sample of tile streams so that no
    /// step clips, mirroring [`crate::ScaleSchedule::calibrate`] but in the
    /// float domain and snapping to powers of two.
    ///
    /// For a single stream this runs in one linear pass (committing each
    /// step's scale as the replay advances — the QAT hot path); multiple
    /// streams use the step-by-step fixed-point replay.
    ///
    /// # Panics
    ///
    /// Panics if `streams` is empty or ragged.
    pub fn calibrate_pow2(streams: &[Vec<Tensor>], bits: Bitwidth, group_size: GroupSize) -> Self {
        assert!(!streams.is_empty(), "need at least one calibration stream");
        let np = streams[0].len();
        assert!(np > 0, "streams must contain at least one tile");
        assert!(streams.iter().all(|s| s.len() == np), "ragged streams");

        if streams.len() == 1 {
            return Self::calibrate_pow2_single(&streams[0], bits, group_size);
        }

        let gs = group_size.get();
        let qp = bits.signed_range().qp as f32;
        let mut scales: Vec<f32> = Vec::with_capacity(np);
        for step in 0..np {
            let mut max_abs = 0.0f32;
            for stream in streams {
                max_abs = max_abs.max(replay_input_max(stream, &scales, step, gs, bits));
            }
            let raw = if max_abs > 0.0 { max_abs / qp } else { 1.0 };
            scales.push(raw.log2().ceil().exp2());
        }
        FloatScaleSchedule { scales, bits }
    }

    /// Single-stream linear-time calibration: one incremental replay,
    /// committing each step's scale before executing it. Produces exactly
    /// the same schedule as the multi-stream fixed-point path restricted
    /// to one stream (each step's input depends only on already-committed
    /// scales).
    fn calibrate_pow2_single(stream: &[Tensor], bits: Bitwidth, group_size: GroupSize) -> Self {
        let np = stream.len();
        let numel = stream[0].numel();
        let gs = group_size.get();
        let qp = bits.signed_range().qp as f32;
        let range = bits.signed_range();
        let mut scales: Vec<f32> = Vec::with_capacity(np);
        let mut stored: Vec<Vec<f32>> = Vec::with_capacity(np);
        let mut acc_buf: Vec<f32> = vec![0.0; numel];

        // `i` is the algorithm's PSUM step number, not a slice cursor.
        #[allow(clippy::needless_range_loop)]
        for i in 0..np {
            let is_apsq_step = i % gs == 0;
            let is_final = i == np - 1;
            acc_buf.fill(0.0);
            if is_apsq_step && i > 0 {
                for prev in stored.iter().take(i).skip(i - gs) {
                    for (a, &v) in acc_buf.iter_mut().zip(prev.iter()) {
                        *a += v;
                    }
                }
            } else if is_final && !is_apsq_step {
                let group_start = (i / gs) * gs;
                for prev in stored.iter().take(i).skip(group_start) {
                    for (a, &v) in acc_buf.iter_mut().zip(prev.iter()) {
                        *a += v;
                    }
                }
            }
            for (a, &t) in acc_buf.iter_mut().zip(stream[i].data().iter()) {
                *a += t;
            }
            let max_abs = acc_buf.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let raw = if max_abs > 0.0 { max_abs / qp } else { 1.0 };
            let s = raw.log2().ceil().exp2();
            scales.push(s);
            stored.push(acc_buf.iter().map(|&v| fake_quant(v, s, range)).collect());
        }
        FloatScaleSchedule { scales, bits }
    }

    /// Number of steps covered.
    pub fn len(&self) -> usize {
        self.scales.len()
    }

    /// Whether the schedule is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.scales.is_empty()
    }

    /// The scale at step `i`.
    pub fn scale(&self, i: usize) -> f32 {
        self.scales[i]
    }

    /// The shared bit-width.
    pub fn bits(&self) -> Bitwidth {
        self.bits
    }

    /// All scales in step order.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }
}

fn fake_quant(x: f32, scale: f32, range: QRange) -> f32 {
    (x / scale).round().clamp(range.qn as f32, range.qp as f32) * scale
}

/// Runs grouped APSQ on float PSUM tiles (fake quantization), mirroring the
/// integer golden model's control flow exactly.
///
/// Returns the dequantized output tile `To`.
///
/// # Panics
///
/// Panics if `tiles` is empty, ragged, or `schedule.len() != tiles.len()`.
pub fn grouped_apsq_f32(
    tiles: &[Tensor],
    schedule: &FloatScaleSchedule,
    group_size: GroupSize,
) -> Tensor {
    let np = tiles.len();
    assert!(np > 0, "grouped_apsq_f32 requires at least one tile");
    assert_eq!(schedule.len(), np, "schedule length mismatch");
    let shape = tiles[0].shape().clone();
    assert!(
        tiles.iter().all(|t| t.shape() == &shape),
        "all PSUM tiles must share one shape"
    );
    let numel = shape.numel();
    let gs = group_size.get();
    let range = schedule.bits().signed_range();

    // Stored fake-quantized values (already dequantized — float domain).
    let mut stored: Vec<Vec<f32>> = Vec::with_capacity(np);
    let mut output: Option<Tensor> = None;

    // `i` is the algorithm's PSUM step number, not a slice cursor.
    #[allow(clippy::needless_range_loop)]
    for i in 0..np {
        let is_apsq_step = i % gs == 0;
        let is_final = i == np - 1;
        let s = schedule.scale(i);

        let mut acc: Vec<f32> = vec![0.0; numel];
        if is_apsq_step && i > 0 {
            for prev in stored.iter().take(i).skip(i - gs) {
                for (a, &v) in acc.iter_mut().zip(prev.iter()) {
                    *a += v;
                }
            }
        } else if is_final && !is_apsq_step {
            let group_start = (i / gs) * gs;
            for prev in stored.iter().take(i).skip(group_start) {
                for (a, &v) in acc.iter_mut().zip(prev.iter()) {
                    *a += v;
                }
            }
        }
        for (a, &t) in acc.iter_mut().zip(tiles[i].data().iter()) {
            *a += t;
        }
        let q: Vec<f32> = acc.iter().map(|&v| fake_quant(v, s, range)).collect();
        if is_final {
            output = Some(Tensor::from_vec(q.clone(), shape.clone()));
        }
        stored.push(q);
    }

    output.expect("final step always produces the output tile")
}

/// Replays the float algorithm to find the max |input| to quantizer
/// `target_step` (mirrors the integer calibrator).
fn replay_input_max(
    stream: &[Tensor],
    scales: &[f32],
    target_step: usize,
    gs: usize,
    bits: Bitwidth,
) -> f32 {
    debug_assert_eq!(scales.len(), target_step);
    let np = stream.len();
    let numel = stream[0].numel();
    let range = bits.signed_range();
    let mut stored: Vec<Vec<f32>> = Vec::with_capacity(target_step);
    for i in 0..=target_step {
        let is_apsq_step = i % gs == 0;
        let is_final = i == np - 1;
        let mut acc: Vec<f32> = vec![0.0; numel];
        if is_apsq_step && i > 0 {
            for prev in stored.iter().take(i).skip(i - gs) {
                for (a, &v) in acc.iter_mut().zip(prev.iter()) {
                    *a += v;
                }
            }
        } else if is_final && !is_apsq_step {
            let group_start = (i / gs) * gs;
            for prev in stored.iter().take(i).skip(group_start) {
                for (a, &v) in acc.iter_mut().zip(prev.iter()) {
                    *a += v;
                }
            }
        }
        for (a, &t) in acc.iter_mut().zip(stream[i].data().iter()) {
            *a += t;
        }
        if i == target_step {
            return acc.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        }
        let s = scales[i];
        stored.push(acc.iter().map(|&v| fake_quant(v, s, range)).collect());
    }
    unreachable!()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ApsqConfig;
    use crate::grouped::grouped_apsq;
    use crate::schedule::ScaleSchedule;
    use apsq_tensor::Int32Tensor;

    #[test]
    fn float_and_integer_paths_agree_bit_for_bit() {
        // Integer-valued tiles + pow2 scales ⇒ exact agreement.
        let int_tiles: Vec<Int32Tensor> = (0..6)
            .map(|i| {
                Int32Tensor::from_vec(
                    (0..8).map(|j| ((i * 131 + j * 37) % 1001) - 500).collect(),
                    [8],
                )
            })
            .collect();
        let float_tiles: Vec<Tensor> = int_tiles.iter().map(|t| t.to_f32()).collect();

        for gs in [1usize, 2, 3, 4] {
            let sched = ScaleSchedule::calibrate(
                std::slice::from_ref(&int_tiles),
                Bitwidth::INT8,
                GroupSize::new(gs),
            );
            let fsched = FloatScaleSchedule::new(
                sched.scales().iter().map(|s| s.scale()).collect(),
                Bitwidth::INT8,
            );
            let int_out = grouped_apsq(&int_tiles, &sched, &ApsqConfig::int8(gs));
            let f_out = grouped_apsq_f32(&float_tiles, &fsched, GroupSize::new(gs));
            for (a, b) in int_out.output.data().iter().zip(f_out.data()) {
                assert_eq!(*a, *b as i32, "gs={gs}");
            }
        }
    }

    #[test]
    fn single_and_multi_stream_calibration_agree() {
        // The linear fast path must produce exactly the schedule the
        // fixed-point replay produces for one stream (force the slow path
        // by duplicating the stream).
        let tiles: Vec<Tensor> = (0..9)
            .map(|i| {
                Tensor::from_vec(
                    (0..6)
                        .map(|j| ((i * 131 + j * 37) % 2001) as f32 - 1000.0)
                        .collect(),
                    [6],
                )
            })
            .collect();
        for gs in [1usize, 2, 3, 4] {
            let fast = FloatScaleSchedule::calibrate_pow2(
                std::slice::from_ref(&tiles),
                Bitwidth::INT8,
                GroupSize::new(gs),
            );
            let slow = FloatScaleSchedule::calibrate_pow2(
                &[tiles.clone(), tiles.clone()],
                Bitwidth::INT8,
                GroupSize::new(gs),
            );
            assert_eq!(fast.scales(), slow.scales(), "gs={gs}");
        }
    }

    #[test]
    fn calibrate_pow2_produces_pow2_scales() {
        let tiles: Vec<Tensor> = (0..4)
            .map(|i| Tensor::from_vec(vec![100.0 * (i + 1) as f32; 4], [4]))
            .collect();
        let sched = FloatScaleSchedule::calibrate_pow2(&[tiles], Bitwidth::INT8, GroupSize::new(2));
        for &s in sched.scales() {
            assert_eq!(s.log2().fract(), 0.0, "scale {s} is not a power of two");
        }
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_bad_scales() {
        FloatScaleSchedule::new(vec![1.0, -1.0], Bitwidth::INT8);
    }
}
