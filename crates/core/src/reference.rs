//! Reference accumulation paths that APSQ is compared against.

use crate::schedule::ScaleSchedule;
use apsq_tensor::Int32Tensor;

/// Exact i32 PSUM accumulation — the conventional high-precision baseline
/// (paper Fig 3b): every tile is added at full precision.
///
/// Accumulation is performed in `i64` and the result is checked to fit in
/// `i32`.
///
/// # Panics
///
/// Panics if `tiles` is empty, shapes mismatch, or the exact sum overflows
/// `i32` (a genuine PSUM-overflow bug in the caller's configuration — the
/// paper sizes PSUM storage at `16 + log2(Ci)` bits precisely to avoid
/// this).
pub fn exact_accumulate(tiles: &[Int32Tensor]) -> Int32Tensor {
    assert!(
        !tiles.is_empty(),
        "exact_accumulate requires at least one tile"
    );
    let numel = tiles[0].numel();
    assert!(
        tiles.iter().all(|t| t.shape() == tiles[0].shape()),
        "all PSUM tiles must share one shape"
    );
    let mut acc = vec![0i64; numel];
    for t in tiles {
        for (a, &v) in acc.iter_mut().zip(t.data().iter()) {
            *a += v as i64;
        }
    }
    let data = acc
        .into_iter()
        .map(|v| {
            i32::try_from(v)
                .unwrap_or_else(|_| panic!("exact PSUM accumulation overflowed i32 (sum = {v})"))
        })
        .collect();
    Int32Tensor::from_vec(data, tiles[0].shape().clone())
}

/// The ADC-style PSUM quantization of refs [19, 20]: each tile is quantized
/// and *immediately dequantized back to full precision* before being
/// accumulated and stored at high precision.
///
/// This reduces ADC resolution in a ReRAM accelerator but — as the paper
/// points out — does **not** reduce the SRAM traffic, because the stored
/// running sum stays at full precision. It is the quantity APSQ improves on.
///
/// # Panics
///
/// Panics if `tiles` is empty or `schedule.len() != tiles.len()`.
pub fn psq_adc_reference(tiles: &[Int32Tensor], schedule: &ScaleSchedule) -> Int32Tensor {
    assert!(
        !tiles.is_empty(),
        "psq_adc_reference requires at least one tile"
    );
    assert_eq!(schedule.len(), tiles.len(), "schedule length mismatch");
    let numel = tiles[0].numel();
    let mut acc = vec![0i64; numel];
    for (i, t) in tiles.iter().enumerate() {
        let s = schedule.scale(i);
        for (a, &v) in acc.iter_mut().zip(t.data().iter()) {
            *a += s.requantize(v) as i64;
        }
    }
    let data = acc
        .into_iter()
        .map(|v| v.clamp(i32::MIN as i64, i32::MAX as i64) as i32)
        .collect();
    Int32Tensor::from_vec(data, tiles[0].shape().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsq_quant::Bitwidth;

    fn tiles_from(vals: &[&[i32]]) -> Vec<Int32Tensor> {
        vals.iter()
            .map(|v| Int32Tensor::from_vec(v.to_vec(), [v.len()]))
            .collect()
    }

    #[test]
    fn exact_sums() {
        let tiles = tiles_from(&[&[1, 2], &[10, -20], &[100, 200]]);
        assert_eq!(exact_accumulate(&tiles).data(), &[111, 182]);
    }

    #[test]
    #[should_panic(expected = "overflowed")]
    fn exact_detects_overflow() {
        let tiles = tiles_from(&[&[i32::MAX], &[1]]);
        exact_accumulate(&tiles);
    }

    #[test]
    fn adc_psq_error_bounded_by_per_tile_half_step() {
        let tiles = tiles_from(&[&[100], &[101], &[99], &[102]]);
        let sched = ScaleSchedule::uniform(4, 1, Bitwidth::INT8); // α = 2
        let exact = exact_accumulate(&tiles);
        let psq = psq_adc_reference(&tiles, &sched);
        // Each tile contributes ≤ α/2 = 1 of error.
        assert!((psq.data()[0] - exact.data()[0]).abs() <= 4);
    }

    #[test]
    fn adc_psq_exact_when_unit_scale() {
        let tiles = tiles_from(&[&[5, -3], &[2, 2]]);
        let sched = ScaleSchedule::uniform(2, 0, Bitwidth::INT8);
        assert_eq!(psq_adc_reference(&tiles, &sched), exact_accumulate(&tiles));
    }
}
