//! Additive Partial Sum Quantization (APSQ) — the paper's core algorithm.
//!
//! DNN accelerators with input- or weight-stationary dataflows repeatedly
//! store and re-fetch high-precision (INT32) partial sums. APSQ (paper
//! eq 10) folds the accumulation into the quantizer so every stored
//! additive partial sum fits in INT8:
//!
//! ```text
//! AP_i = Qᵢ(Tp_i + α_{i−1} · AP_{i−1}),   AP_0 = Q₀(Tp_0)
//! ```
//!
//! Because requantizing the running sum at every step compounds rounding
//! error, the paper's *grouping strategy* (Algorithm 1) applies APSQ once
//! per group of `gs` tiles and plain PSUM quantization to the rest — same
//! buffer traffic, less error. This crate implements:
//!
//! - [`grouped_apsq`] — Algorithm 1 in the exact integer domain (the golden
//!   model the RAE hardware simulator must match bit-for-bit), with
//!   [`BufferTraffic`] accounting;
//! - [`apsq_recursion_reference`] — an independent eq (10) implementation
//!   for cross-checking `gs = 1`;
//! - [`grouped_apsq_f32`] — the float fake-quant twin used during QAT;
//! - [`StreamingApsq`] / [`grouped_apsq_streamed`] — the incremental form:
//!   one algorithm step per pushed tile, and an
//!   [`apsq_tensor::ExecEngine`]-driven GEMM that folds APSQ quantization
//!   directly into the K loop without materializing the tile stream;
//! - [`exact_accumulate`] / [`psq_adc_reference`] — the baselines;
//! - [`ScaleSchedule`] — per-step power-of-two scale calibration;
//! - [`error_vs_group_size`] and friends — SQNR analysis.
//!
//! # Example
//!
//! ```
//! use apsq_core::{error_vs_group_size, synthetic_psum_stream};
//! use apsq_quant::Bitwidth;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let stream = synthetic_psum_stream(&mut rng, 16, 64, 8);
//! let sweep = error_vs_group_size(&stream, Bitwidth::INT8, &[1, 2, 3, 4]);
//! // Larger groups requantize the running sum less often.
//! assert!(sweep.last().unwrap().sqnr_db >= sweep[0].sqnr_db - 1.0);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod config;
mod float_apsq;
mod grouped;
mod reference;
mod schedule;
mod streaming;
mod theory;
mod traffic;

pub use analysis::{
    error_vs_group_size, max_abs_err, mse, sqnr_db, synthetic_psum_stream, GroupSweepPoint,
};
pub use config::{ApsqConfig, GroupSize};
pub use float_apsq::{grouped_apsq_f32, FloatScaleSchedule};
pub use grouped::{apsq_recursion_reference, grouped_apsq, ApsqRun};
pub use reference::{exact_accumulate, psq_adc_reference};
pub use schedule::ScaleSchedule;
pub use streaming::{grouped_apsq_streamed, StreamingApsq};
pub use theory::{predicted_error_variance, predicted_sqnr_db, signal_power};
pub use traffic::BufferTraffic;
