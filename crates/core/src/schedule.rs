//! Per-step power-of-two scale schedules for the APSQ quantizers.
//!
//! Eq (10) gives every accumulation step its own quantizer `Q^i_k` with its
//! own scaling factor `α_i`. In hardware the scales live in a register list
//! (Algorithm 1, line 1) and are powers of two so that scaling is a shift.

use crate::config::GroupSize;
use apsq_quant::{Bitwidth, Pow2Scale};
use apsq_tensor::Int32Tensor;

/// The ordered list of power-of-two scales `α_0 .. α_{np−1}` used by one
/// APSQ run of `np` PSUM tiles.
///
/// # Examples
///
/// ```
/// use apsq_core::ScaleSchedule;
/// use apsq_quant::Bitwidth;
///
/// let s = ScaleSchedule::uniform(4, 3, Bitwidth::INT8);
/// assert_eq!(s.len(), 4);
/// assert_eq!(s.scale(2).exponent(), 3);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScaleSchedule {
    scales: Vec<Pow2Scale>,
}

impl ScaleSchedule {
    /// Builds a schedule from explicit per-step exponents.
    ///
    /// # Panics
    ///
    /// Panics if `exponents` is empty or any exponent exceeds 30.
    pub fn from_exponents(exponents: &[u32], bits: Bitwidth) -> Self {
        assert!(
            !exponents.is_empty(),
            "schedule must cover at least one step"
        );
        ScaleSchedule {
            scales: exponents.iter().map(|&e| Pow2Scale::new(e, bits)).collect(),
        }
    }

    /// Builds a schedule with the same exponent at every step.
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0` or `exponent > 30`.
    pub fn uniform(steps: usize, exponent: u32, bits: Bitwidth) -> Self {
        assert!(steps > 0, "schedule must cover at least one step");
        ScaleSchedule {
            scales: vec![Pow2Scale::new(exponent, bits); steps],
        }
    }

    /// Calibrates a schedule from sample PSUM-tile streams so that no
    /// quantization step clips, for a given group size.
    ///
    /// For each step `i` the calibrator replays Algorithm 1 on every stream
    /// and records the maximum absolute value entering quantizer `Q^i_k`;
    /// the step's exponent is the tightest power of two covering it.
    /// Because later steps see *dequantized* values produced by earlier
    /// steps, calibration proceeds step by step, committing each exponent
    /// before measuring the next — a fixed point of the replay.
    ///
    /// # Panics
    ///
    /// Panics if `streams` is empty, any stream is empty, or stream lengths
    /// differ.
    pub fn calibrate(streams: &[Vec<Int32Tensor>], bits: Bitwidth, group_size: GroupSize) -> Self {
        assert!(!streams.is_empty(), "need at least one calibration stream");
        let np = streams[0].len();
        assert!(np > 0, "streams must contain at least one tile");
        assert!(
            streams.iter().all(|s| s.len() == np),
            "calibration streams must have equal length"
        );

        if streams.len() == 1 {
            return Self::calibrate_single(&streams[0], bits, group_size);
        }

        let gs = group_size.get();
        let mut scales: Vec<Pow2Scale> = Vec::with_capacity(np);
        for step in 0..np {
            // Measure the worst-case |input| to quantizer `step` across all
            // streams, replaying the committed prefix of the schedule.
            let mut max_abs: i32 = 1;
            for stream in streams {
                let v = replay_quantizer_input(stream, &scales, step, gs);
                max_abs = max_abs.max(v);
            }
            scales.push(Pow2Scale::covering(max_abs, bits));
        }
        ScaleSchedule { scales }
    }

    /// Single-stream linear-time calibration: one incremental replay that
    /// commits each step's exponent before executing the step. Identical
    /// to the fixed-point replay restricted to one stream.
    fn calibrate_single(stream: &[Int32Tensor], bits: Bitwidth, group_size: GroupSize) -> Self {
        let np = stream.len();
        let numel = stream[0].numel();
        let gs = group_size.get();
        let mut scales: Vec<Pow2Scale> = Vec::with_capacity(np);
        let mut stored: Vec<Vec<i32>> = Vec::with_capacity(np);
        let mut acc: Vec<i64> = vec![0; numel];

        // `i` is the algorithm's PSUM step number, not a slice cursor.
        #[allow(clippy::needless_range_loop)]
        for i in 0..np {
            let is_apsq_step = i % gs == 0;
            let is_final = i == np - 1;
            acc.fill(0);
            if is_apsq_step && i > 0 {
                for l in i - gs..i {
                    let s = scales[l];
                    for (a, &c) in acc.iter_mut().zip(stored[l].iter()) {
                        *a += s.dequantize(c) as i64;
                    }
                }
            } else if is_final && !is_apsq_step {
                let group_start = (i / gs) * gs;
                for l in group_start..i {
                    let s = scales[l];
                    for (a, &c) in acc.iter_mut().zip(stored[l].iter()) {
                        *a += s.dequantize(c) as i64;
                    }
                }
            }
            for (a, &t) in acc.iter_mut().zip(stream[i].data().iter()) {
                *a += t as i64;
            }
            let max_abs = acc
                .iter()
                .map(|v| v.unsigned_abs())
                .max()
                .unwrap_or(0)
                .min(i32::MAX as u64)
                .max(1) as i32;
            let s = Pow2Scale::covering(max_abs, bits);
            scales.push(s);
            stored.push(
                acc.iter()
                    .map(|&v| s.quantize(v.clamp(i32::MIN as i64, i32::MAX as i64) as i32))
                    .collect(),
            );
        }
        ScaleSchedule { scales }
    }

    /// Number of steps covered.
    pub fn len(&self) -> usize {
        self.scales.len()
    }

    /// Whether the schedule is empty (never true for constructed schedules).
    pub fn is_empty(&self) -> bool {
        self.scales.is_empty()
    }

    /// The scale for step `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn scale(&self, i: usize) -> Pow2Scale {
        self.scales[i]
    }

    /// All scales in step order.
    pub fn scales(&self) -> &[Pow2Scale] {
        &self.scales
    }

    /// The shared bit-width of every scale in the schedule.
    pub fn bits(&self) -> Bitwidth {
        self.scales[0].bits()
    }
}

/// Replays Algorithm 1 over `stream` with the committed `scales` prefix and
/// returns the max |value| that would enter quantizer `target_step`.
///
/// Steps beyond the committed prefix never run (calibration is in step
/// order, so `target_step == scales.len()`).
fn replay_quantizer_input(
    stream: &[Int32Tensor],
    scales: &[Pow2Scale],
    target_step: usize,
    gs: usize,
) -> i32 {
    debug_assert_eq!(scales.len(), target_step);
    let np = stream.len();
    let numel = stream[0].numel();
    // Stored codes for steps < target_step (already-committed quantizers).
    let mut codes: Vec<Vec<i32>> = Vec::with_capacity(target_step);
    for i in 0..=target_step {
        let is_apsq_step = i % gs == 0;
        let is_final = i == np - 1;
        // Assemble the quantizer input for step i.
        let mut input: Vec<i64> = vec![0; numel];
        if is_apsq_step && i > 0 {
            for l in i.saturating_sub(gs)..i {
                let s = scales[l];
                for (acc, &c) in input.iter_mut().zip(codes[l].iter()) {
                    *acc += (s.dequantize(c)) as i64;
                }
            }
        } else if is_final && !is_apsq_step {
            let group_start = (i / gs) * gs;
            for l in group_start..i {
                let s = scales[l];
                for (acc, &c) in input.iter_mut().zip(codes[l].iter()) {
                    *acc += (s.dequantize(c)) as i64;
                }
            }
        }
        // Every step adds its own tile: APSQ steps on top of the dequantized
        // previous group, the final step on top of the dequantized group
        // prefix, and plain PSQ steps on top of nothing.
        for (acc, &t) in input.iter_mut().zip(stream[i].data().iter()) {
            *acc += t as i64;
        }
        if i == target_step {
            let m = input
                .iter()
                .map(|v| v.unsigned_abs())
                .max()
                .unwrap_or(0)
                .min(i32::MAX as u64) as i32;
            return m;
        }
        // Commit step i's codes with the known scale.
        let s = scales[i];
        codes.push(
            input
                .iter()
                .map(|&v| s.quantize(v.clamp(i32::MIN as i64, i32::MAX as i64) as i32))
                .collect(),
        );
    }
    unreachable!("target step is always reached")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile(vals: &[i32]) -> Int32Tensor {
        Int32Tensor::from_vec(vals.to_vec(), [vals.len()])
    }

    #[test]
    fn uniform_schedule() {
        let s = ScaleSchedule::uniform(3, 4, Bitwidth::INT8);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!(s.scales().iter().all(|sc| sc.exponent() == 4));
    }

    #[test]
    fn from_exponents_round_trip() {
        let s = ScaleSchedule::from_exponents(&[0, 2, 5], Bitwidth::INT8);
        assert_eq!(s.scale(0).exponent(), 0);
        assert_eq!(s.scale(1).exponent(), 2);
        assert_eq!(s.scale(2).exponent(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn empty_schedule_rejected() {
        ScaleSchedule::from_exponents(&[], Bitwidth::INT8);
    }

    #[test]
    fn single_and_multi_stream_calibration_agree() {
        let tiles: Vec<Int32Tensor> = (0..9)
            .map(|i| {
                Int32Tensor::from_vec(
                    (0..5).map(|j| ((i * 173 + j * 41) % 3001) - 1500).collect(),
                    [5],
                )
            })
            .collect();
        for gs in [1usize, 2, 3, 4] {
            let fast = ScaleSchedule::calibrate(
                std::slice::from_ref(&tiles),
                Bitwidth::INT8,
                GroupSize::new(gs),
            );
            let slow = ScaleSchedule::calibrate(
                &[tiles.clone(), tiles.clone()],
                Bitwidth::INT8,
                GroupSize::new(gs),
            );
            assert_eq!(fast, slow, "gs={gs}");
        }
    }

    #[test]
    fn calibration_covers_growing_stream_gs1() {
        // Tiles of growing magnitude: the running sum grows, so later
        // exponents must be at least as large as needed by the prefix sums.
        let stream = vec![tile(&[100]), tile(&[200]), tile(&[400]), tile(&[800])];
        let sched = ScaleSchedule::calibrate(
            std::slice::from_ref(&stream),
            Bitwidth::INT8,
            GroupSize::new(1),
        );
        assert_eq!(sched.len(), 4);
        // Step 0 sees 100 → covering exponent 0 (127 ≥ 100).
        assert_eq!(sched.scale(0).exponent(), 0);
        // Later steps see roughly the prefix sums 300, 700, 1500.
        assert!(sched.scale(3).dequantize(127) >= 1400);
    }

    #[test]
    fn calibration_mid_group_steps_only_cover_own_tile() {
        // With gs = 4, steps 1..3 quantize only their own tile, so their
        // exponents depend on the tile magnitude, not the prefix sum.
        let stream = vec![
            tile(&[1000]),
            tile(&[50]),
            tile(&[50]),
            tile(&[50]),
            tile(&[50]),
        ];
        let sched = ScaleSchedule::calibrate(&[stream], Bitwidth::INT8, GroupSize::new(4));
        // Step 1 and 2 only see |50| → exponent 0.
        assert_eq!(sched.scale(1).exponent(), 0);
        assert_eq!(sched.scale(2).exponent(), 0);
        // Step 0 sees 1000 → needs exponent 3 (127·8 = 1016 ≥ 1000).
        assert_eq!(sched.scale(0).exponent(), 3);
    }
}
