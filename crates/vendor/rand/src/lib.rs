//! Minimal, self-contained reimplementation of the subset of the `rand` 0.8
//! API used by this workspace.
//!
//! The build environment has no network route to a crates.io mirror, so the
//! workspace vendors this stub instead of the real crate. Covered surface:
//!
//! - [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64 — *not* the same
//!   stream as upstream `StdRng`, but deterministic per seed)
//! - [`SeedableRng::seed_from_u64`]
//! - [`Rng::gen`], [`Rng::gen_bool`], [`Rng::gen_range`] over integer and
//!   float `Range` / `RangeInclusive` bounds
//!
//! Anything outside this list is intentionally absent; extend the stub rather
//! than reaching for unvendored APIs.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    /// Deterministic PRNG standing in for `rand::rngs::StdRng`.
    ///
    /// Implementation: xoshiro256++ with SplitMix64 seed expansion. Streams
    /// differ from upstream `StdRng` (ChaCha12), which only matters if a test
    /// hard-codes upstream output values — none in this workspace do.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64_seed(seed: u64) -> Self {
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }

        pub(crate) fn next_raw(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.next_raw()
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng::from_u64_seed(state)
        }
    }
}

/// Core entropy source; object-safe so range sampling can take `&mut dyn`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform `[0, 1)` f64 from the top 53 bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution upstream).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

/// Types samplable uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// `hi` is exclusive when `inclusive` is false.
    fn sample_in(rng: &mut dyn RngCore, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in(rng: &mut dyn RngCore, lo: Self, hi: Self, inclusive: bool) -> Self {
                let lo_w = lo as i128;
                let hi_w = hi as i128 + if inclusive { 1 } else { 0 };
                assert!(lo_w < hi_w, "gen_range: empty range {lo}..{hi}");
                let span = (hi_w - lo_w) as u128;
                // Widening multiply avoids modulo bias without rejection loops;
                // bias is < 2^-64 per draw, irrelevant at these span sizes.
                let frac = (rng.next_u64() as u128 * span) >> 64;
                (lo_w + frac as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in(rng: &mut dyn RngCore, lo: Self, hi: Self, _inclusive: bool) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                lo + (hi - lo) * unit_f64(rng) as $t
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let mut rng = rng;
        T::sample_in(&mut rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let mut rng = rng;
        T::sample_in(&mut rng, *self.start(), *self.end(), true)
    }
}

pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }

    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: i32 = rng.gen_range(-128i32..=127);
            assert!((-128..=127).contains(&x));
            let y = rng.gen_range(0..3usize);
            assert!(y < 3);
            let f = rng.gen_range(-10.0f32..10.0);
            assert!((-10.0..10.0).contains(&f));
        }
    }

    #[test]
    fn gen_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0f64;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "hits {hits}");
    }
}
