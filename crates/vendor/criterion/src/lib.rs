//! Minimal, self-contained reimplementation of the subset of the `criterion`
//! 0.5 API used by this workspace's benches.
//!
//! The build environment has no network route to a crates.io mirror, so the
//! workspace vendors this stub instead of the real crate. It performs a real
//! (if statistically unsophisticated) measurement: warm up, then time batches
//! until ~100 ms has elapsed, and report the best per-iteration time plus
//! throughput when configured. There is no outlier analysis, no HTML report,
//! and no baseline comparison.

// A benchmark harness exists to read the wall clock; the workspace-wide
// disallowed-methods mirror of `wall-clock-in-scheduling` does not apply.
#![allow(clippy::disallowed_methods)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Target measurement budget per benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(100);
const WARMUP_ITERS: u64 = 3;
const MAX_ITERS: u64 = 1_000_000;

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Default)]
pub struct Bencher {
    /// Best observed per-iteration time, filled in by `iter*`.
    best: Option<Duration>,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let mut iters = 0u64;
        let mut best = Duration::MAX;
        let started = Instant::now();
        while started.elapsed() < MEASURE_BUDGET && iters < MAX_ITERS {
            let t = Instant::now();
            black_box(routine());
            best = best.min(t.elapsed());
            iters += 1;
        }
        self.best = Some(best);
    }

    pub fn iter_with_setup<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
    ) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine(setup()));
        }
        let mut iters = 0u64;
        let mut best = Duration::MAX;
        let started = Instant::now();
        while started.elapsed() < MEASURE_BUDGET && iters < MAX_ITERS {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            best = best.min(t.elapsed());
            iters += 1;
        }
        self.best = Some(best);
    }
}

fn report(label: &str, best: Option<Duration>, throughput: Option<Throughput>) {
    let Some(best) = best else {
        println!("{label:<48} (no measurement: routine never ran)");
        return;
    };
    let secs = best.as_secs_f64();
    let rate = match throughput {
        Some(Throughput::Elements(n)) if secs > 0.0 => {
            format!("  {:>12.3e} elem/s", n as f64 / secs)
        }
        Some(Throughput::Bytes(n)) if secs > 0.0 => {
            format!("  {:>12.3e} B/s", n as f64 / secs)
        }
        _ => String::new(),
    };
    println!("{label:<48} best {best:>12.3?}{rate}");
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        report(&id.label, b.best, None);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.label),
            b.best,
            self.throughput,
        );
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.label),
            b.best,
            self.throughput,
        );
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
