//! Collection strategies: `vec(element_strategy, size_range)`.

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;

/// Inclusive length bounds for a generated collection.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range {r:?}");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range {r:?}");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
        let len = runner.rng().gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.generate(runner)).collect()
    }
}
