//! Deterministic test runner and configuration.

use rand::{rngs::StdRng, SeedableRng};

/// Fixed seed: CI and local runs always see the same cases.
const DETERMINISTIC_SEED: u64 = 0x4150_5351_2d44_4143; // "APSQ-DAC"

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub struct TestRunner {
    config: ProptestConfig,
    rng: StdRng,
}

impl TestRunner {
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner {
            config,
            rng: StdRng::seed_from_u64(DETERMINISTIC_SEED),
        }
    }

    /// Upstream-compatible constructor used by tests that drive strategies
    /// manually via `new_tree`.
    pub fn deterministic() -> Self {
        TestRunner::new(ProptestConfig::default())
    }

    pub fn config(&self) -> &ProptestConfig {
        &self.config
    }

    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

impl Default for TestRunner {
    fn default() -> Self {
        TestRunner::deterministic()
    }
}
