//! Strategies: composable recipes for generating test values.
//!
//! Unlike upstream, a [`ValueTree`] here is just the generated value — there
//! is no simplify/complicate lattice because the stub does not shrink.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::test_runner::TestRunner;

/// A generated value. `current()` clones it out, matching upstream's usage
/// pattern `strategy.new_tree(&mut runner).unwrap().current()`.
pub trait ValueTree {
    type Value;
    fn current(&self) -> Self::Value;
}

#[derive(Clone, Debug)]
pub struct Node<T: Clone>(T);

impl<T: Clone> ValueTree for Node<T> {
    type Value = T;
    fn current(&self) -> T {
        self.0.clone()
    }
}

pub trait Strategy {
    type Value;

    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    fn new_tree(&self, runner: &mut TestRunner) -> Result<Node<Self::Value>, String>
    where
        Self: Sized,
        Self::Value: Clone,
    {
        Ok(Node(self.generate(runner)))
    }

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        (**self).generate(runner)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, runner: &mut TestRunner) -> S::Value {
        (**self).generate(runner)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, runner: &mut TestRunner) -> U {
        (self.f)(self.source.generate(runner))
    }
}

pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, runner: &mut TestRunner) -> T::Value {
        (self.f)(self.source.generate(runner)).generate(runner)
    }
}

/// Uniform choice among boxed strategies (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        let idx = runner.rng().gen_range(0..self.options.len());
        self.options[idx].generate(runner)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(runner),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Strategy for `any::<T>()`, generating from the type's full value space.
pub struct Any<T>(pub(crate) PhantomData<T>);

impl<T: crate::arbitrary::ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}
