//! `any::<T>()` — full-value-space generation for primitive types.

use std::marker::PhantomData;

use crate::strategy::Any;
use crate::test_runner::TestRunner;

pub trait ArbitraryValue: Sized {
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(runner: &mut TestRunner) -> Self {
                use rand::RngCore;
                runner.rng().next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        use rand::RngCore;
        runner.rng().next_u64() & 1 == 1
    }
}

pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}
