//! Numeric strategies mirroring `proptest::num`.

pub mod f32 {
    use rand::Rng;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;

    /// Generates normal (non-zero, non-subnormal, finite) `f32` values of
    /// either sign, spanning the full exponent range like upstream's
    /// `f32::NORMAL`.
    #[derive(Clone, Copy, Debug)]
    pub struct Normal;

    pub const NORMAL: Normal = Normal;

    impl Strategy for Normal {
        type Value = f32;
        fn generate(&self, runner: &mut TestRunner) -> f32 {
            let rng = runner.rng();
            let sign = u32::from(rng.gen_bool(0.5)) << 31;
            // Biased exponent 1..=254: excludes zero/subnormals (0) and
            // inf/NaN (255).
            let exponent: u32 = rng.gen_range(1u32..=254) << 23;
            let mantissa: u32 = rng.gen_range(0u32..1 << 23);
            f32::from_bits(sign | exponent | mantissa)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn normal_values_are_normal() {
            let mut runner = TestRunner::deterministic();
            for _ in 0..10_000 {
                let x = NORMAL.generate(&mut runner);
                assert!(x.is_normal(), "{x} should be normal");
            }
        }
    }
}
