//! Minimal, self-contained reimplementation of the subset of the `proptest`
//! 1.x API used by this workspace.
//!
//! The build environment has no network route to a crates.io mirror, so the
//! workspace vendors this stub instead of the real crate. Key differences
//! from upstream, by design:
//!
//! - **No shrinking.** A failing case panics with the generated inputs in the
//!   assertion message but is not minimised.
//! - **Fully deterministic.** Every runner is seeded from a fixed constant,
//!   so CI failures always reproduce locally.
//! - Covered surface: the [`proptest!`] / [`prop_assert!`] /
//!   [`prop_assert_eq!`] / [`prop_oneof!`] macros, [`strategy::Strategy`]
//!   (`prop_map`, `prop_flat_map`, `new_tree`, `boxed`), [`strategy::Just`],
//!   range and tuple strategies, [`arbitrary::any`], [`collection::vec`],
//!   [`num::f32::NORMAL`], [`test_runner::TestRunner`] and
//!   [`test_runner::ProptestConfig`].
//!
//! Extend the stub rather than reaching for unvendored APIs.

pub mod arbitrary;
pub mod collection;
pub mod num;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union, ValueTree};
    pub use crate::test_runner::{ProptestConfig, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Declares property tests. Each argument is drawn fresh from its strategy
/// for every case; the body runs once per case and panics on failure.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let __cases = __config.cases;
                let mut __runner = $crate::test_runner::TestRunner::new(__config);
                for __case in 0..__cases {
                    let _ = __case;
                    $(let $arg = $crate::strategy::Strategy::generate(
                        &($strat), &mut __runner);)+
                    $body
                }
            }
        )*
    };
}

/// Stub `prop_assert!`: plain `assert!` (no shrink phase to abort).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Stub `prop_assert_eq!`: plain `assert_eq!` (no shrink phase to abort).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Uniform choice among same-valued strategies. Upstream's weighted
/// `weight => strategy` arms are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}
