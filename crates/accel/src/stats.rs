//! Empirical traffic statistics collected by the simulator.

use apsq_dataflow::{EnergyBreakdown, EnergyTable};

/// SRAM/DRAM byte traffic for one tensor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemTraffic {
    /// Bytes moved to/from on-chip SRAM.
    pub sram_bytes: u64,
    /// Bytes moved to/from off-chip DRAM.
    pub dram_bytes: u64,
}

impl MemTraffic {
    /// Total bytes.
    pub fn total(&self) -> u64 {
        self.sram_bytes + self.dram_bytes
    }
}

/// Complete simulation statistics for one layer execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Ifmap traffic.
    pub ifmap: MemTraffic,
    /// Weight traffic.
    pub weight: MemTraffic,
    /// PSUM traffic.
    pub psum: MemTraffic,
    /// Ofmap traffic.
    pub ofmap: MemTraffic,
    /// Exact MAC operations performed.
    pub macs: u64,
    /// MAC-array invocations (one tile triple per cycle).
    pub array_cycles: u64,
}

impl SimStats {
    /// Total SRAM bytes across tensors.
    pub fn sram_bytes(&self) -> u64 {
        self.ifmap.sram_bytes
            + self.weight.sram_bytes
            + self.psum.sram_bytes
            + self.ofmap.sram_bytes
    }

    /// Total DRAM bytes across tensors.
    pub fn dram_bytes(&self) -> u64 {
        self.ifmap.dram_bytes
            + self.weight.dram_bytes
            + self.psum.dram_bytes
            + self.ofmap.dram_bytes
    }

    /// Converts the measured traffic into the same energy breakdown the
    /// analytical framework produces, for apples-to-apples comparison.
    pub fn energy(&self, table: &EnergyTable) -> EnergyBreakdown {
        let move_energy = |t: &MemTraffic| {
            t.sram_bytes as f64 * table.sram_pj_per_byte
                + t.dram_bytes as f64 * table.dram_pj_per_byte
        };
        EnergyBreakdown {
            ifmap: move_energy(&self.ifmap),
            weight: move_energy(&self.weight),
            psum: move_energy(&self.psum),
            ofmap: move_energy(&self.ofmap),
            op: self.macs as f64 * table.mac_pj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let s = SimStats {
            ifmap: MemTraffic {
                sram_bytes: 10,
                dram_bytes: 1,
            },
            weight: MemTraffic {
                sram_bytes: 20,
                dram_bytes: 2,
            },
            psum: MemTraffic {
                sram_bytes: 30,
                dram_bytes: 3,
            },
            ofmap: MemTraffic {
                sram_bytes: 40,
                dram_bytes: 4,
            },
            macs: 5,
            array_cycles: 1,
        };
        assert_eq!(s.sram_bytes(), 100);
        assert_eq!(s.dram_bytes(), 10);
    }

    #[test]
    fn energy_mapping() {
        let s = SimStats {
            psum: MemTraffic {
                sram_bytes: 100,
                dram_bytes: 0,
            },
            macs: 10,
            ..SimStats::default()
        };
        let t = EnergyTable {
            dram_pj_per_byte: 100.0,
            sram_pj_per_byte: 2.0,
            reg_pj_per_byte: 0.1,
            mac_pj: 0.5,
        };
        let e = s.energy(&t);
        assert_eq!(e.psum, 200.0);
        assert_eq!(e.op, 5.0);
    }
}
