//! Output-stationary loop nest: PSUMs accumulate in PE registers, so the
//! PSUM format never touches memory — the reference point against which
//! the paper motivates fixing IS/WS instead.

use crate::sim::SimResult;
use crate::stats::SimStats;
use apsq_dataflow::AcceleratorConfig;
use apsq_tensor::{Int32Tensor, Int8Tensor};

/// Output-stationary GEMM simulator: each output tile is fully reduced in
/// registers before anything is written back.
///
/// Traffic model (matching the analytical OS derivation): the ifmap is
/// re-read once per output-channel pass, the weights once per output-pixel
/// pass; PSUM register energy is tracked as `psum_reg` accesses (2 per
/// MAC at the accumulation width) but no PSUM bytes move in SRAM or DRAM.
#[derive(Clone, Debug)]
pub struct OsGemmSimulator {
    arch: AcceleratorConfig,
    /// PSUM register width in bits (32 for exact accumulation).
    psum_reg_bits: u32,
}

impl OsGemmSimulator {
    /// Creates an OS simulator with 32-bit accumulation registers.
    ///
    /// # Panics
    ///
    /// Panics if the architecture has zero fields.
    pub fn new(arch: AcceleratorConfig) -> Self {
        arch.validate();
        OsGemmSimulator {
            arch,
            psum_reg_bits: 32,
        }
    }

    /// Overrides the accumulation register width (for width studies).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero.
    pub fn with_psum_reg_bits(mut self, bits: u32) -> Self {
        assert!(bits > 0, "register width must be positive");
        self.psum_reg_bits = bits;
        self
    }

    /// Runs one GEMM: `ifmap` `[T, Ci]` × `weight` `[Ci, Co]`, bit-exact.
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatches.
    pub fn run(&self, ifmap: &Int8Tensor, weight: &Int8Tensor) -> SimResult {
        assert_eq!(ifmap.shape().rank(), 2, "ifmap must be [T, Ci]");
        assert_eq!(weight.shape().rank(), 2, "weight must be [Ci, Co]");
        assert_eq!(
            ifmap.dims()[1],
            weight.dims()[0],
            "ifmap Ci {} != weight Ci {}",
            ifmap.dims()[1],
            weight.dims()[0]
        );
        let (t, ci) = (ifmap.dims()[0], ifmap.dims()[1]);
        let co = weight.dims()[1];
        let (po, pci, pco) = (self.arch.po, self.arch.pci, self.arch.pco);
        let co_groups = co.div_ceil(pco);
        let px_groups = t.div_ceil(po);

        let mut stats = SimStats::default();

        // Ifmap residency (full map vs Bi), re-read per co pass.
        let si = (t * ci) as u64;
        let i_resident = (si as f64) <= self.arch.ifmap_buffer_bytes as f64;
        if i_resident {
            stats.ifmap.dram_bytes += si;
            stats.ifmap.sram_bytes += si; // fill
            stats.ifmap.sram_bytes += si * co_groups as u64; // per-pass reads
        } else {
            stats.ifmap.dram_bytes += si * co_groups as u64;
            stats.ifmap.sram_bytes += 2 * si * co_groups as u64;
        }

        // Weight residency (full weights vs Bw), re-read per pixel pass.
        let sw = (ci * co) as u64;
        let w_resident = (sw as f64) <= self.arch.weight_buffer_bytes as f64;
        if w_resident {
            stats.weight.dram_bytes += sw;
            stats.weight.sram_bytes += sw;
            stats.weight.sram_bytes += sw * px_groups as u64;
        } else {
            stats.weight.dram_bytes += sw * px_groups as u64;
            stats.weight.sram_bytes += 2 * sw * px_groups as u64;
        }

        // Compute: full reduction per output element, in registers.
        let mut out = vec![0i32; t * co];
        for tok in 0..t {
            for oc in 0..co {
                let mut acc = 0i32;
                for icn in 0..ci {
                    acc +=
                        ifmap.data()[tok * ci + icn] as i32 * weight.data()[icn * co + oc] as i32;
                }
                out[tok * co + oc] = acc;
            }
        }
        stats.macs = (t * ci * co) as u64;
        stats.array_cycles = (px_groups * co_groups * ci.div_ceil(pci)) as u64;
        // PSUMs never leave the PE registers: `stats.psum` stays zero, and
        // register traffic is reported by [`Self::psum_register_bytes`].

        stats.ofmap.sram_bytes += 2 * (t * co) as u64;
        stats.ofmap.dram_bytes += (t * co) as u64;

        SimResult {
            output: Int32Tensor::from_vec(out, [t, co]),
            stats,
        }
    }

    /// PSUM register bytes touched for a `[T, Ci] × [Ci, Co]` GEMM
    /// (2 accesses per MAC at the configured register width).
    pub fn psum_register_bytes(&self, t: usize, ci: usize, co: usize) -> u64 {
        2 * (t * ci * co) as u64 * (self.psum_reg_bits as u64) / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsq_tensor::int8_matmul;

    fn arch() -> AcceleratorConfig {
        AcceleratorConfig {
            po: 4,
            pci: 4,
            pco: 4,
            ifmap_buffer_bytes: 8 * 1024,
            ofmap_buffer_bytes: 8 * 1024,
            weight_buffer_bytes: 2 * 1024,
        }
    }

    fn tensors(t: usize, ci: usize, co: usize) -> (Int8Tensor, Int8Tensor) {
        let a = Int8Tensor::from_vec(
            (0..t * ci).map(|x| ((x * 37) % 255) as i8).collect(),
            [t, ci],
        );
        let w = Int8Tensor::from_vec(
            (0..ci * co).map(|x| ((x * 73) % 251) as i8).collect(),
            [ci, co],
        );
        (a, w)
    }

    #[test]
    fn output_bit_exact() {
        let (a, w) = tensors(9, 20, 11);
        let r = OsGemmSimulator::new(arch()).run(&a, &w);
        assert_eq!(r.output, int8_matmul(&a, &w));
    }

    #[test]
    fn no_psum_memory_traffic() {
        let (a, w) = tensors(32, 64, 32);
        let r = OsGemmSimulator::new(arch()).run(&a, &w);
        assert_eq!(r.stats.psum.sram_bytes, 0);
        assert_eq!(r.stats.psum.dram_bytes, 0);
    }

    #[test]
    fn weight_spill_scales_with_pixel_passes() {
        // Sw = 64·64 = 4 KB > 2 KB ⇒ re-fetched per pixel pass (32/4 = 8).
        let (a, w) = tensors(32, 64, 64);
        let r = OsGemmSimulator::new(arch()).run(&a, &w);
        assert_eq!(r.stats.weight.dram_bytes, (64 * 64 * 8) as u64);
    }

    #[test]
    fn matches_analytical_os_model() {
        use apsq_dataflow::{access_counts, Dataflow, LayerShape, PsumFormat};
        let (a, w) = tensors(32, 48, 24);
        let layer = LayerShape::gemm("x", 32, 48, 24);
        let r = OsGemmSimulator::new(arch()).run(&a, &w);
        let p = access_counts(
            &layer,
            &arch(),
            Dataflow::OutputStationary,
            &PsumFormat::int32_baseline(),
        );
        assert_eq!(r.stats.ifmap.sram_bytes as f64, p.ifmap.sram_bytes);
        assert_eq!(r.stats.ifmap.dram_bytes as f64, p.ifmap.dram_bytes);
        assert_eq!(r.stats.weight.sram_bytes as f64, p.weight.sram_bytes);
        assert_eq!(r.stats.weight.dram_bytes as f64, p.weight.dram_bytes);
        assert_eq!(r.stats.ofmap.sram_bytes as f64, p.ofmap.sram_bytes);
        assert_eq!(r.stats.macs as f64, p.macs);
    }

    #[test]
    fn register_bytes_accounting() {
        let sim = OsGemmSimulator::new(arch());
        assert_eq!(sim.psum_register_bytes(2, 3, 4), 2 * 24 * 4);
        let sim16 = OsGemmSimulator::new(arch()).with_psum_reg_bits(16);
        assert_eq!(sim16.psum_register_bytes(2, 3, 4), 2 * 24 * 2);
    }
}
