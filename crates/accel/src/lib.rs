//! Tile-based DNN accelerator simulator with byte-accurate traffic
//! accounting and a bit-accurate PSUM path.
//!
//! [`GemmSimulator`] executes `[T, Ci] × [Ci, Co]` GEMMs through real IS or
//! WS loop nests over a `Po × Pci × Pco` MAC-array model:
//!
//! - outputs are **bit-exact**: the INT32 path equals
//!   [`apsq_tensor::int8_matmul`], the APSQ path equals the software golden
//!   model [`apsq_core::grouped_apsq`] (itself equal to the RAE hardware
//!   model);
//! - every SRAM/DRAM byte is counted per tensor, which cross-validates the
//!   paper's analytical access-count equations (3)–(6) empirically — see
//!   the `tests/` directory of this crate and the workspace-level
//!   integration tests.
//!
//! # Example
//!
//! ```
//! use apsq_accel::{GemmSimulator, PsumPath};
//! use apsq_dataflow::{AcceleratorConfig, Dataflow};
//! use apsq_tensor::{int8_matmul, Int8Tensor};
//!
//! let a = Int8Tensor::from_vec(vec![1; 8 * 16], [8, 16]);
//! let w = Int8Tensor::from_vec(vec![2; 16 * 8], [16, 8]);
//! let sim = GemmSimulator::new(
//!     AcceleratorConfig::transformer(),
//!     Dataflow::WeightStationary,
//!     PsumPath::ExactInt32,
//! );
//! let r = sim.run(&a, &w);
//! assert_eq!(r.output, int8_matmul(&a, &w));
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod mem;
mod os_sim;
mod sim;
mod stats;

pub use mem::{Dram, Sram};
pub use os_sim::OsGemmSimulator;
pub use sim::{GemmSimulator, PsumPath, SimResult};
pub use stats::{MemTraffic, SimStats};
