//! Byte-granular memory models with access accounting.

/// An on-chip SRAM buffer: capacity plus read/write byte counters.
///
/// The simulator checks working sets against the capacity to decide spill
/// behaviour; the counters feed the empirical cross-validation against the
/// analytical framework.
#[derive(Clone, Debug)]
pub struct Sram {
    name: &'static str,
    capacity_bytes: usize,
    read_bytes: u64,
    write_bytes: u64,
}

impl Sram {
    /// Creates a buffer.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes == 0`.
    pub fn new(name: &'static str, capacity_bytes: usize) -> Self {
        assert!(capacity_bytes > 0, "SRAM capacity must be positive");
        Sram {
            name,
            capacity_bytes,
            read_bytes: 0,
            write_bytes: 0,
        }
    }

    /// The buffer's name (for diagnostics).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Whether a working set of `bytes` fits (boundary-inclusive, matching
    /// the analytical framework).
    pub fn fits(&self, bytes: f64) -> bool {
        bytes <= self.capacity_bytes as f64
    }

    /// Records a read of `bytes`.
    pub fn read(&mut self, bytes: u64) {
        self.read_bytes += bytes;
    }

    /// Records a write of `bytes`.
    pub fn write(&mut self, bytes: u64) {
        self.write_bytes += bytes;
    }

    /// Total bytes read.
    pub fn read_bytes(&self) -> u64 {
        self.read_bytes
    }

    /// Total bytes written.
    pub fn write_bytes(&self) -> u64 {
        self.write_bytes
    }

    /// Total traffic in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }
}

/// Off-chip DRAM: unbounded capacity, byte counters only.
#[derive(Clone, Debug, Default)]
pub struct Dram {
    read_bytes: u64,
    write_bytes: u64,
}

impl Dram {
    /// Creates a DRAM model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a read of `bytes`.
    pub fn read(&mut self, bytes: u64) {
        self.read_bytes += bytes;
    }

    /// Records a write of `bytes`.
    pub fn write(&mut self, bytes: u64) {
        self.write_bytes += bytes;
    }

    /// Total bytes read.
    pub fn read_bytes(&self) -> u64 {
        self.read_bytes
    }

    /// Total bytes written.
    pub fn write_bytes(&self) -> u64 {
        self.write_bytes
    }

    /// Total traffic in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters() {
        let mut s = Sram::new("ifmap", 1024);
        s.read(100);
        s.write(50);
        assert_eq!(s.read_bytes(), 100);
        assert_eq!(s.write_bytes(), 50);
        assert_eq!(s.total_bytes(), 150);
        assert_eq!(s.name(), "ifmap");
    }

    #[test]
    fn fit_is_boundary_inclusive() {
        let s = Sram::new("ofmap", 256);
        assert!(s.fits(256.0));
        assert!(!s.fits(256.1));
    }

    #[test]
    fn dram_counters() {
        let mut d = Dram::new();
        d.read(7);
        d.write(3);
        assert_eq!(d.total_bytes(), 10);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        Sram::new("bad", 0);
    }
}
