//! The tile-based GEMM simulator: executes IS/WS loop nests over a MAC
//! array model with byte-accurate traffic accounting and a bit-accurate
//! PSUM path (exact INT32 or grouped APSQ).

use crate::stats::SimStats;
use apsq_core::{grouped_apsq, ApsqConfig, GroupSize, ScaleSchedule};
use apsq_dataflow::{AcceleratorConfig, Dataflow};
use apsq_quant::Bitwidth;
use apsq_tensor::{ExecEngine, Int32Tensor, Int8Tensor};

/// How the simulator treats partial sums.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PsumPath {
    /// Conventional exact INT32 accumulation (β = 4).
    ExactInt32,
    /// Grouped APSQ at the given bit-width and group size (β = bits/8,
    /// `gs` buffer slots per element).
    Apsq {
        /// Stored PSUM width.
        bits: Bitwidth,
        /// Group size.
        gs: usize,
    },
}

impl PsumPath {
    /// Bytes per stored PSUM access.
    pub fn access_bytes(&self) -> f64 {
        match self {
            PsumPath::ExactInt32 => 4.0,
            PsumPath::Apsq { bits, .. } => bits.get() as f64 / 8.0,
        }
    }

    /// Buffer-resident bytes per output element.
    pub fn working_set_bytes_per_element(&self) -> f64 {
        match self {
            PsumPath::ExactInt32 => 4.0,
            PsumPath::Apsq { bits, gs } => (*gs as f64) * bits.get() as f64 / 8.0,
        }
    }
}

/// Result of simulating one GEMM layer.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// The layer output in the i32 PSUM domain: exact sums for
    /// [`PsumPath::ExactInt32`], dequantized APSQ outputs otherwise.
    pub output: Int32Tensor,
    /// Measured traffic and compute.
    pub stats: SimStats,
}

/// The simulator. Executes `[T, Ci] × [Ci, Co]` GEMMs under a chosen
/// dataflow with byte-accurate access accounting.
#[derive(Clone, Debug)]
pub struct GemmSimulator {
    arch: AcceleratorConfig,
    dataflow: Dataflow,
    psum_path: PsumPath,
    engine: ExecEngine,
}

impl GemmSimulator {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics if the architecture has zero fields, if the dataflow is
    /// output-stationary (the PSUM path under study does not exist there),
    /// or if an APSQ path has `gs = 0`.
    pub fn new(arch: AcceleratorConfig, dataflow: Dataflow, psum_path: PsumPath) -> Self {
        Self::with_engine(arch, dataflow, psum_path, ExecEngine::serial())
    }

    /// Creates a simulator whose PE-array tile computations dispatch on
    /// `engine` (parallelized over output-tile rows). Traffic accounting
    /// and outputs are bit-identical for every thread count.
    ///
    /// # Panics
    ///
    /// Same conditions as [`GemmSimulator::new`].
    pub fn with_engine(
        arch: AcceleratorConfig,
        dataflow: Dataflow,
        psum_path: PsumPath,
        engine: ExecEngine,
    ) -> Self {
        arch.validate();
        assert!(
            dataflow.buffers_psums(),
            "the simulator models the buffered-PSUM dataflows (IS/WS)"
        );
        if let PsumPath::Apsq { gs, .. } = psum_path {
            assert!(gs > 0, "APSQ group size must be positive");
        }
        GemmSimulator {
            arch,
            dataflow,
            psum_path,
            engine,
        }
    }

    /// Runs one GEMM: `ifmap` is `[T, Ci]` (tokens × input channels),
    /// `weight` is `[Ci, Co]`.
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatches.
    pub fn run(&self, ifmap: &Int8Tensor, weight: &Int8Tensor) -> SimResult {
        assert_eq!(ifmap.shape().rank(), 2, "ifmap must be [T, Ci]");
        assert_eq!(weight.shape().rank(), 2, "weight must be [Ci, Co]");
        assert_eq!(
            ifmap.dims()[1],
            weight.dims()[0],
            "ifmap Ci {} != weight Ci {}",
            ifmap.dims()[1],
            weight.dims()[0]
        );
        match self.dataflow {
            Dataflow::WeightStationary => self.run_ws(ifmap, weight),
            Dataflow::InputStationary => self.run_is(ifmap, weight),
            Dataflow::OutputStationary => unreachable!("rejected in constructor"),
        }
    }

    /// Weight-stationary nest: `for co_g { for ci_g { for tok_tile } }`.
    /// PSUMs for all tokens × one co-group stay live across the `ci_g`
    /// loop.
    fn run_ws(&self, ifmap: &Int8Tensor, weight: &Int8Tensor) -> SimResult {
        let (t, ci) = (ifmap.dims()[0], ifmap.dims()[1]);
        let co = weight.dims()[1];
        let (po, pci, pco) = (self.arch.po, self.arch.pci, self.arch.pco);
        let np = ci.div_ceil(pci);
        let co_groups = co.div_ceil(pco);
        let tok_tiles = t.div_ceil(po);

        let mut stats = SimStats::default();

        // Ifmap: DRAM → SRAM once if the *tile* working set fits (Po·Ci for
        // a GEMM), re-fetched per co-pass otherwise (paper eq 5/6).
        let ifmap_tile_bytes = (po * ci) as f64;
        let ifmap_resident = ifmap_tile_bytes <= self.arch.ifmap_buffer_bytes as f64;
        stats.ifmap.dram_bytes += (t * ci) as u64;
        stats.ifmap.sram_bytes += (t * ci) as u64; // fill write

        // Weights: DRAM → SRAM once; each weight byte then read once.
        stats.weight.dram_bytes += (ci * co) as u64;
        stats.weight.sram_bytes += (ci * co) as u64; // fill write
        stats.weight.sram_bytes += (ci * co) as u64; // one read per byte

        // PSUM residency for one co-group.
        let psum_ws = self.psum_path.working_set_bytes_per_element() * (t * pco) as f64;
        let psum_resident = psum_ws <= self.arch.ofmap_buffer_bytes as f64;

        let mut out = vec![0i32; t * co];

        for cog in 0..co_groups {
            let co0 = cog * pco;
            let co1 = usize::min(co0 + pco, co);

            if cog > 0 && !ifmap_resident {
                // Re-fetch the whole ifmap for this pass.
                stats.ifmap.dram_bytes += (t * ci) as u64;
                stats.ifmap.sram_bytes += (t * ci) as u64;
            }

            // Produce the PSUM tile stream for this co-group. The MAC
            // arithmetic runs through the execution engine (bit-identical
            // to the scalar loops for every thread count); the traffic and
            // cycle accounting below is the closed form of the per-token-
            // tile loop it replaces.
            let mut tiles: Vec<Int32Tensor> = Vec::with_capacity(np);
            for cig in 0..np {
                let ci0 = cig * pci;
                let ci1 = usize::min(ci0 + pci, ci);
                let mut tile = vec![0i32; t * (co1 - co0)];
                self.engine.int8_gemm_block(
                    ifmap.data(),
                    ci,
                    &weight.data()[co0..],
                    co,
                    &mut tile,
                    co1 - co0,
                    t,
                    co1 - co0,
                    ci0,
                    ci1,
                );
                // One ifmap SRAM read per (token, input-channel) pair…
                stats.ifmap.sram_bytes += (t * (ci1 - ci0)) as u64;
                // …one MAC per (token, output-channel, input-channel)…
                stats.macs += (t * (co1 - co0) * (ci1 - ci0)) as u64;
                // …and one array pass per Po-token tile.
                stats.array_cycles += tok_tiles as u64;
                tiles.push(Int32Tensor::from_vec(tile, [t * (co1 - co0)]));
            }

            // Fold the stream through the configured PSUM path with
            // byte-accurate buffer accounting.
            let folded = self.fold_psums(&tiles, psum_resident, &mut stats);
            for tok in 0..t {
                for oc in co0..co1 {
                    out[tok * co + oc] = folded.data()[tok * (co1 - co0) + (oc - co0)];
                }
            }
        }

        // Ofmap: requantized outputs written to SRAM, then drained to DRAM.
        stats.ofmap.sram_bytes += 2 * (t * co) as u64;
        stats.ofmap.dram_bytes += (t * co) as u64;

        SimResult {
            output: Int32Tensor::from_vec(out, [t, co]),
            stats,
        }
    }

    /// Input-stationary nest: `for tok_tile { for ci_g { for co_g } }`.
    /// PSUMs for one token tile × all output channels stay live across the
    /// `ci_g` loop; weights are re-streamed once per token tile.
    fn run_is(&self, ifmap: &Int8Tensor, weight: &Int8Tensor) -> SimResult {
        let (t, ci) = (ifmap.dims()[0], ifmap.dims()[1]);
        let co = weight.dims()[1];
        let (po, pci, pco) = (self.arch.po, self.arch.pci, self.arch.pco);
        let np = ci.div_ceil(pci);
        let co_groups = co.div_ceil(pco);
        let tok_tiles = t.div_ceil(po);

        let mut stats = SimStats::default();

        // Ifmap: once from DRAM, each byte written and read once (eq 3/4).
        stats.ifmap.dram_bytes += (t * ci) as u64;
        stats.ifmap.sram_bytes += 2 * (t * ci) as u64;

        // Weights: resident if the full Sw fits in Bw (eq 3/4); otherwise
        // re-fetched from DRAM on every token-tile pass.
        let weights_resident = ((ci * co) as f64) <= self.arch.weight_buffer_bytes as f64;
        if weights_resident {
            stats.weight.dram_bytes += (ci * co) as u64;
            stats.weight.sram_bytes += (ci * co) as u64; // fill write
        }

        // PSUM residency for one token tile (Po pixels × all Co).
        let psum_ws = self.psum_path.working_set_bytes_per_element() * (po * co) as f64;
        let psum_resident = psum_ws <= self.arch.ofmap_buffer_bytes as f64;

        let mut out = vec![0i32; t * co];

        for tt in 0..tok_tiles {
            let t0 = tt * po;
            let t1 = usize::min(t0 + po, t);

            if weights_resident {
                // One SRAM read sweep over the weights for this pass.
                stats.weight.sram_bytes += (ci * co) as u64;
            } else {
                // Stage through SRAM from DRAM every pass.
                stats.weight.dram_bytes += (ci * co) as u64;
                stats.weight.sram_bytes += 2 * (ci * co) as u64;
            }

            // Tile MACs run through the engine; accounting is the closed
            // form of the per-co-group loop it replaces.
            let mut tiles: Vec<Int32Tensor> = Vec::with_capacity(np);
            for cig in 0..np {
                let ci0 = cig * pci;
                let ci1 = usize::min(ci0 + pci, ci);
                let mut tile = vec![0i32; (t1 - t0) * co];
                self.engine.int8_gemm_block(
                    &ifmap.data()[t0 * ci..],
                    ci,
                    weight.data(),
                    co,
                    &mut tile,
                    co,
                    t1 - t0,
                    co,
                    ci0,
                    ci1,
                );
                stats.macs += ((t1 - t0) * co * (ci1 - ci0)) as u64;
                stats.array_cycles += co_groups as u64;
                tiles.push(Int32Tensor::from_vec(tile, [(t1 - t0) * co]));
            }

            let folded = self.fold_psums(&tiles, psum_resident, &mut stats);
            for tok in t0..t1 {
                for oc in 0..co {
                    out[tok * co + oc] = folded.data()[(tok - t0) * co + oc];
                }
            }
        }

        stats.ofmap.sram_bytes += 2 * (t * co) as u64;
        stats.ofmap.dram_bytes += (t * co) as u64;

        SimResult {
            output: Int32Tensor::from_vec(out, [t, co]),
            stats,
        }
    }

    /// Folds one PSUM tile stream (per output block) through the
    /// configured path, charging buffer traffic:
    ///
    /// - resident: logical read = 1 SRAM read; logical write = 1 SRAM
    ///   write;
    /// - spilled: logical read additionally stages from DRAM (+1 DRAM read,
    ///   +1 SRAM write); logical write additionally evicts (+1 SRAM read,
    ///   +1 DRAM write) — reproducing the analytical 2× SRAM + 1× DRAM per
    ///   logical access (eq 3–6 spill terms).
    fn fold_psums(
        &self,
        tiles: &[Int32Tensor],
        resident: bool,
        stats: &mut SimStats,
    ) -> Int32Tensor {
        let numel = tiles[0].numel() as u64;
        let np = tiles.len() as u64;
        let bytes = self.psum_path.access_bytes();
        let charge = |n_logical_reads: u64, n_logical_writes: u64, stats: &mut SimStats| {
            let (mut sram, mut dram) = (0f64, 0f64);
            sram += (n_logical_reads + n_logical_writes) as f64 * bytes;
            if !resident {
                sram += (n_logical_reads + n_logical_writes) as f64 * bytes;
                dram += (n_logical_reads + n_logical_writes) as f64 * bytes;
            }
            stats.psum.sram_bytes += sram as u64;
            stats.psum.dram_bytes += dram as u64;
        };

        match self.psum_path {
            PsumPath::ExactInt32 => {
                // np writes, np−1 read-modify reads per element.
                charge((np - 1) * numel, np * numel, stats);
                apsq_core::exact_accumulate(tiles)
            }
            PsumPath::Apsq { bits, gs } => {
                // Grouped APSQ: word-count invariant — np writes, np−1
                // reads per element, each 1 word at `bits`.
                charge((np - 1) * numel, np * numel, stats);
                let sched = ScaleSchedule::calibrate(
                    std::slice::from_ref(&tiles.to_vec()),
                    bits,
                    GroupSize::new(gs),
                );
                let run = grouped_apsq(
                    tiles,
                    &sched,
                    &ApsqConfig {
                        bits,
                        group_size: GroupSize::new(gs),
                    },
                );
                run.output
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsq_tensor::int8_matmul;

    fn test_tensors(t: usize, ci: usize, co: usize) -> (Int8Tensor, Int8Tensor) {
        let a = Int8Tensor::from_vec(
            (0..t * ci).map(|x| ((x * 37 + 11) % 255) as i8).collect(),
            [t, ci],
        );
        let w = Int8Tensor::from_vec(
            (0..ci * co).map(|x| ((x * 73 + 5) % 251) as i8).collect(),
            [ci, co],
        );
        (a, w)
    }

    fn small_arch() -> AcceleratorConfig {
        AcceleratorConfig {
            po: 4,
            pci: 4,
            pco: 4,
            ifmap_buffer_bytes: 64 * 1024,
            ofmap_buffer_bytes: 64 * 1024,
            weight_buffer_bytes: 32 * 1024,
        }
    }

    #[test]
    fn ws_exact_output_matches_reference_gemm() {
        let (a, w) = test_tensors(10, 24, 12);
        let sim = GemmSimulator::new(
            small_arch(),
            Dataflow::WeightStationary,
            PsumPath::ExactInt32,
        );
        let r = sim.run(&a, &w);
        assert_eq!(r.output, int8_matmul(&a, &w));
        assert_eq!(r.stats.macs, (10 * 24 * 12) as u64);
    }

    #[test]
    fn is_exact_output_matches_reference_gemm() {
        let (a, w) = test_tensors(9, 17, 13); // deliberately ragged tiles
        let sim = GemmSimulator::new(
            small_arch(),
            Dataflow::InputStationary,
            PsumPath::ExactInt32,
        );
        let r = sim.run(&a, &w);
        assert_eq!(r.output, int8_matmul(&a, &w));
        assert_eq!(r.stats.macs, (9 * 17 * 13) as u64);
    }

    #[test]
    fn parallel_engine_simulation_is_bit_identical() {
        let (a, w) = test_tensors(33, 70, 21); // ragged against every tile dim
        for dataflow in [Dataflow::WeightStationary, Dataflow::InputStationary] {
            for path in [
                PsumPath::ExactInt32,
                PsumPath::Apsq {
                    bits: Bitwidth::INT8,
                    gs: 2,
                },
            ] {
                let serial = GemmSimulator::new(small_arch(), dataflow, path).run(&a, &w);
                let parallel = GemmSimulator::with_engine(
                    small_arch(),
                    dataflow,
                    path,
                    ExecEngine::with_threads(4).with_spawn_threshold(0),
                )
                .run(&a, &w);
                assert_eq!(parallel.output, serial.output, "{dataflow:?} {path:?}");
                assert_eq!(parallel.stats, serial.stats, "{dataflow:?} {path:?}");
            }
        }
    }

    #[test]
    fn apsq_output_close_to_exact() {
        let (a, w) = test_tensors(8, 64, 8);
        let exact = int8_matmul(&a, &w);
        for gs in [1usize, 2, 4] {
            let sim = GemmSimulator::new(
                small_arch(),
                Dataflow::WeightStationary,
                PsumPath::Apsq {
                    bits: Bitwidth::INT8,
                    gs,
                },
            );
            let r = sim.run(&a, &w);
            // Relative error of the INT8 APSQ path stays small.
            for (x, e) in r.output.data().iter().zip(exact.data()) {
                let tol = (e.abs() as f64 * 0.05).max(2000.0);
                assert!(((x - e).abs() as f64) <= tol, "gs={gs}: {x} vs {e}");
            }
        }
    }

    #[test]
    fn apsq_psum_traffic_is_quarter_of_exact() {
        let (a, w) = test_tensors(8, 64, 8);
        let exact_sim = GemmSimulator::new(
            small_arch(),
            Dataflow::WeightStationary,
            PsumPath::ExactInt32,
        );
        let apsq_sim = GemmSimulator::new(
            small_arch(),
            Dataflow::WeightStationary,
            PsumPath::Apsq {
                bits: Bitwidth::INT8,
                gs: 2,
            },
        );
        let e = exact_sim.run(&a, &w).stats;
        let q = apsq_sim.run(&a, &w).stats;
        assert_eq!(e.psum.sram_bytes, 4 * q.psum.sram_bytes);
    }

    #[test]
    fn psum_traffic_invariant_across_group_sizes() {
        let (a, w) = test_tensors(8, 64, 8);
        let mut traffics = Vec::new();
        for gs in 1..=4 {
            let sim = GemmSimulator::new(
                small_arch(),
                Dataflow::WeightStationary,
                PsumPath::Apsq {
                    bits: Bitwidth::INT8,
                    gs,
                },
            );
            traffics.push(sim.run(&a, &w).stats.psum);
        }
        assert!(traffics.windows(2).all(|p| p[0] == p[1]));
    }

    #[test]
    fn spill_adds_dram_traffic() {
        // Tiny ofmap buffer forces the INT32 working set off-chip.
        let mut arch = small_arch();
        arch.ofmap_buffer_bytes = 16;
        let (a, w) = test_tensors(8, 32, 8);
        let sim = GemmSimulator::new(arch, Dataflow::WeightStationary, PsumPath::ExactInt32);
        let r = sim.run(&a, &w);
        assert!(r.stats.psum.dram_bytes > 0);
        // Spilled SRAM traffic doubles.
        let fit_sim = GemmSimulator::new(
            small_arch(),
            Dataflow::WeightStationary,
            PsumPath::ExactInt32,
        );
        let f = fit_sim.run(&a, &w);
        assert_eq!(r.stats.psum.sram_bytes, 2 * f.stats.psum.sram_bytes);
        // And the output is still exact.
        assert_eq!(r.output, int8_matmul(&a, &w));
    }

    #[test]
    #[should_panic(expected = "IS/WS")]
    fn os_rejected() {
        GemmSimulator::new(
            small_arch(),
            Dataflow::OutputStationary,
            PsumPath::ExactInt32,
        );
    }
}
