//! Cross-validation: the empirical loop-nest simulator must reproduce the
//! analytical access-count model (paper eqs 3–6) for GEMM layers.
//!
//! Exact agreement is asserted where the two models coincide by
//! construction (ifmap/weight/ofmap); PSUM traffic differs only by the
//! boundary terms (the analytical `2(np−1)` vs the simulator's measured
//! `2np−1` logical accesses per element), so it is checked with a tight
//! relative bound.

use apsq_accel::{GemmSimulator, PsumPath, SimStats};
use apsq_dataflow::{
    access_counts, AcceleratorConfig, AccessCounts, Dataflow, LayerShape, PsumFormat,
};
use apsq_quant::Bitwidth;
use apsq_tensor::Int8Tensor;

fn tensors_for(layer: &LayerShape) -> (Int8Tensor, Int8Tensor) {
    let t = layer.output_pixels();
    let (ci, co) = (layer.ci, layer.co);
    let a = Int8Tensor::from_vec(
        (0..t * ci).map(|x| ((x * 31 + 7) % 253) as i8).collect(),
        [t, ci],
    );
    let w = Int8Tensor::from_vec(
        (0..ci * co).map(|x| ((x * 89 + 3) % 241) as i8).collect(),
        [ci, co],
    );
    (a, w)
}

fn arch() -> AcceleratorConfig {
    // A scaled-down accelerator so test layers are quick but still tile.
    AcceleratorConfig {
        po: 8,
        pci: 8,
        pco: 8,
        ifmap_buffer_bytes: 16 * 1024,
        ofmap_buffer_bytes: 16 * 1024,
        weight_buffer_bytes: 8 * 1024,
    }
}

fn compare(
    layer: &LayerShape,
    dataflow: Dataflow,
    psum_path: PsumPath,
    psum_format: PsumFormat,
) -> (SimStats, AccessCounts) {
    let (a, w) = tensors_for(layer);
    let sim = GemmSimulator::new(arch(), dataflow, psum_path);
    let measured = sim.run(&a, &w).stats;
    let predicted = access_counts(layer, &arch(), dataflow, &psum_format);
    (measured, predicted)
}

fn assert_close(name: &str, measured: u64, predicted: f64, tol: f64) {
    let m = measured as f64;
    assert!(
        (m - predicted).abs() <= tol * predicted.max(1.0),
        "{name}: measured {m} vs predicted {predicted} (tol {tol})"
    );
}

#[test]
fn ws_exact_int32_matches_analytical() {
    // np = 128/8 = 16; everything resident.
    let layer = LayerShape::gemm("l", 64, 128, 64);
    let (m, p) = compare(
        &layer,
        Dataflow::WeightStationary,
        PsumPath::ExactInt32,
        PsumFormat::int32_baseline(),
    );
    assert_eq!(m.ifmap.sram_bytes as f64, p.ifmap.sram_bytes);
    assert_eq!(m.ifmap.dram_bytes as f64, p.ifmap.dram_bytes);
    assert_eq!(m.weight.sram_bytes as f64, p.weight.sram_bytes);
    assert_eq!(m.weight.dram_bytes as f64, p.weight.dram_bytes);
    assert_eq!(m.ofmap.sram_bytes as f64, p.ofmap.sram_bytes);
    assert_eq!(m.ofmap.dram_bytes as f64, p.ofmap.dram_bytes);
    assert_eq!(m.macs as f64, p.macs);
    // PSUM: boundary terms only — within 5% at np = 16.
    assert_close("psum sram", m.psum.sram_bytes, p.psum.sram_bytes, 0.05);
    assert_eq!(m.psum.dram_bytes, 0);
    assert_eq!(p.psum.dram_bytes, 0.0);
}

#[test]
fn is_exact_int32_matches_analytical_resident_weights() {
    // Weights 32·64 = 2 KB < 8 KB buffer ⇒ resident.
    let layer = LayerShape::gemm("l", 64, 32, 64);
    let (m, p) = compare(
        &layer,
        Dataflow::InputStationary,
        PsumPath::ExactInt32,
        PsumFormat::int32_baseline(),
    );
    assert_eq!(m.ifmap.sram_bytes as f64, p.ifmap.sram_bytes);
    assert_eq!(m.weight.sram_bytes as f64, p.weight.sram_bytes);
    assert_eq!(m.weight.dram_bytes as f64, p.weight.dram_bytes);
    assert_close("psum sram", m.psum.sram_bytes, p.psum.sram_bytes, 0.20);
}

#[test]
fn is_weight_spill_matches_analytical() {
    // Weights 256·64 = 16 KB > 8 KB ⇒ re-fetched per token-tile pass.
    let layer = LayerShape::gemm("l", 32, 256, 64);
    let (m, p) = compare(
        &layer,
        Dataflow::InputStationary,
        PsumPath::ExactInt32,
        PsumFormat::int32_baseline(),
    );
    assert!(
        m.weight.dram_bytes > (256 * 64) as u64,
        "weights must spill"
    );
    assert_eq!(m.weight.dram_bytes as f64, p.weight.dram_bytes);
    assert_eq!(m.weight.sram_bytes as f64, p.weight.sram_bytes);
}

#[test]
fn ws_psum_spill_matches_analytical() {
    // INT32 PSUM working set = 4·T·Pco = 4·1024·8 = 32 KB > 16 KB ⇒ spill.
    let layer = LayerShape::gemm("l", 1024, 64, 16);
    let (m, p) = compare(
        &layer,
        Dataflow::WeightStationary,
        PsumPath::ExactInt32,
        PsumFormat::int32_baseline(),
    );
    assert!(m.psum.dram_bytes > 0, "PSUMs must spill");
    assert!(p.psum.dram_bytes > 0.0, "analytical model must also spill");
    assert_close("psum sram", m.psum.sram_bytes, p.psum.sram_bytes, 0.10);
    assert_close("psum dram", m.psum.dram_bytes, p.psum.dram_bytes, 0.10);
}

#[test]
fn apsq_psum_traffic_matches_analytical_beta_one() {
    let layer = LayerShape::gemm("l", 64, 256, 32);
    for gs in 1..=4 {
        let (m, p) = compare(
            &layer,
            Dataflow::WeightStationary,
            PsumPath::Apsq {
                bits: Bitwidth::INT8,
                gs,
            },
            PsumFormat::apsq_int8(gs),
        );
        assert_close("psum sram", m.psum.sram_bytes, p.psum.sram_bytes, 0.05);
        assert_eq!(m.psum.dram_bytes as f64, p.psum.dram_bytes);
    }
}

#[test]
fn apsq_group_slots_trigger_spill_in_both_models() {
    // INT8 ws = gs·T·Pco: T = 1024, Pco = 8 ⇒ 8 KB·gs vs 16 KB buffer:
    // fits at gs ≤ 2, spills at gs ≥ 3 — in both models.
    let layer = LayerShape::gemm("l", 1024, 64, 16);
    for gs in 1..=4 {
        let (m, p) = compare(
            &layer,
            Dataflow::WeightStationary,
            PsumPath::Apsq {
                bits: Bitwidth::INT8,
                gs,
            },
            PsumFormat::apsq_int8(gs),
        );
        let should_spill = gs >= 3;
        assert_eq!(m.psum.dram_bytes > 0, should_spill, "sim gs={gs}");
        assert_eq!(p.psum.dram_bytes > 0.0, should_spill, "model gs={gs}");
    }
}

#[test]
fn normalized_energy_agrees_between_models() {
    // The headline quantity (normalized energy, APSQ vs INT32 baseline)
    // must agree between the empirical and analytical models.
    use apsq_dataflow::{energy_breakdown, EnergyTable};
    let layer = LayerShape::gemm("l", 128, 256, 64);
    let table = EnergyTable::default_28nm();

    let (m_base, p_base) = compare(
        &layer,
        Dataflow::WeightStationary,
        PsumPath::ExactInt32,
        PsumFormat::int32_baseline(),
    );
    let (m_apsq, p_apsq) = compare(
        &layer,
        Dataflow::WeightStationary,
        PsumPath::Apsq {
            bits: Bitwidth::INT8,
            gs: 2,
        },
        PsumFormat::apsq_int8(2),
    );
    let sim_ratio = m_apsq.energy(&table).total() / m_base.energy(&table).total();
    let model_ratio =
        energy_breakdown(&p_apsq, &table).total() / energy_breakdown(&p_base, &table).total();
    assert!(
        (sim_ratio - model_ratio).abs() < 0.02,
        "normalized energy: sim {sim_ratio:.3} vs model {model_ratio:.3}"
    );
}
