//! Shapes and row-major index arithmetic.

use std::fmt;

/// The dimensions of a dense, row-major tensor.
///
/// A `Shape` is an ordered list of extents. The last axis is the fastest
/// varying one (row-major / C order). Rank-0 shapes are permitted and denote
/// scalars with one element.
///
/// # Examples
///
/// ```
/// use apsq_tensor::Shape;
///
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from its extents.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape(dims)
    }

    /// The number of axes.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// The extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// The extent of axis `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Total number of elements (product of extents; 1 for rank-0).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.rank()];
        for i in (0..self.rank().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Converts a multi-index into a linear row-major offset.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or any coordinate is out of
    /// bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.rank(),
            "index rank {} does not match shape rank {}",
            index.len(),
            self.rank()
        );
        let mut off = 0usize;
        let strides = self.strides();
        for (axis, (&i, &s)) in index.iter().zip(strides.iter()).enumerate() {
            assert!(
                i < self.0[axis],
                "index {} out of bounds for axis {} with extent {}",
                i,
                axis,
                self.0[axis]
            );
            off += i * s;
        }
        off
    }

    /// Whether the two shapes can be used in an elementwise binary operation.
    ///
    /// This library deliberately supports only exact-shape elementwise ops
    /// plus the common row-broadcast (`[M, N] op [N]`), which covers every
    /// use in the APSQ reproduction without the complexity of full NumPy
    /// broadcasting.
    pub fn elementwise_compatible(&self, other: &Shape) -> bool {
        self == other || self.row_broadcast_compatible(other)
    }

    /// Whether `other` is a vector that broadcasts across the rows of `self`
    /// (i.e. `other.rank() == 1` and its extent equals our last axis).
    pub fn row_broadcast_compatible(&self, other: &Shape) -> bool {
        other.rank() == 1 && self.rank() >= 1 && other.0[0] == *self.0.last().unwrap()
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(vec![]);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.numel(), 1);
        assert!(s.strides().is_empty());
        assert_eq!(s.offset(&[]), 0);
    }

    #[test]
    fn offset_round_trip() {
        let s = Shape::from([3, 5]);
        let mut seen = [false; 15];
        for i in 0..3 {
            for j in 0..5 {
                let off = s.offset(&[i, j]);
                assert!(!seen[off]);
                seen[off] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_out_of_bounds() {
        Shape::from([2, 2]).offset(&[2, 0]);
    }

    #[test]
    fn row_broadcast() {
        let m = Shape::from([4, 7]);
        let v = Shape::from([7]);
        assert!(m.elementwise_compatible(&v));
        assert!(!m.elementwise_compatible(&Shape::from([4])));
    }

    #[test]
    fn display() {
        assert_eq!(Shape::from([2, 3]).to_string(), "[2x3]");
    }
}
