//! Cache-blocked, register-tiled GEMM micro-kernels with explicit-width
//! SIMD backends behind one runtime dispatch.
//!
//! These are the serial building blocks the [`crate::exec::ExecEngine`]
//! dispatches over its worker pool. Every kernel:
//!
//! - operates on an explicit `[k0, k1)` slice of the reduction axis, so the
//!   same code path serves full GEMMs and K-tiled partial-sum (PSUM) tiles;
//! - takes leading dimensions (`lda`/`ldb`/`ldo`), so the accelerator
//!   simulator can run it over sub-blocks of larger matrices in place;
//! - **accumulates** into `out` (callers zero the buffer when they want a
//!   plain product), which is what makes K-panel streaming additive;
//! - reduces every output element in a **fixed order that depends only on
//!   the kernel's argument values** — never on the backend, the thread
//!   partition, or the host CPU. Integer kernels are exact regardless;
//!   float kernels pin the order explicitly (see below).
//!
//! # Backends
//!
//! Each kernel exists in up to three implementations selected by
//! [`KernelBackend`]:
//!
//! - [`KernelBackend::Scalar`] — the portable reference, written with
//!   fixed-width lane arrays (the unrolled form non-x86 autovectorizers
//!   digest well). This is the semantic definition of every kernel.
//! - [`KernelBackend::Sse2`] — `core::arch::x86_64` 128-bit intrinsics.
//!   SSE2 is part of the x86-64 baseline, so this tier needs no feature
//!   detection; it is the floor on any x86-64 host.
//! - [`KernelBackend::Avx2`] — 256-bit intrinsics (i8×i8→i16 widening
//!   multiply-add into i32 lanes, 8-wide f32 mul/add lanes), used when
//!   `is_x86_feature_detected!("avx2")` reports support.
//!
//! # The lane-reduction-order rule
//!
//! Bit-identity across backends is a hard contract, not an accident:
//!
//! - **Integer kernels** accumulate in `i32`; integer addition associates,
//!   so any summation order produces identical bits. SIMD variants are
//!   free to use widening multiply-adds and horizontal reductions.
//! - **f32 kernels that vectorize along N** (`gemm_f32`, `gemm_at_f32`)
//!   keep one output element per SIMD lane, so the per-element reduction
//!   order is `l` increasing — exactly the scalar order. They use separate
//!   multiply and add (never FMA: fusing would change rounding).
//! - **f32 kernels that vectorize along K** (`gemm_bt_f32`) cannot keep
//!   the serial order, so the order itself is pinned lane-structured:
//!   [`LANES`] partial sums accumulate strided chunks of the `[k0, k1)`
//!   range (lane `c` takes elements at chunk offset `c`, the < [`LANES`]
//!   tail folds into lanes `0..rem`), then lanes reduce in ascending index
//!   order ([`reduce_lanes_f32`]). Every backend implements *that*
//!   definition, so scalar and SIMD agree bit-for-bit.

// BLAS-convention argument lists (operand/ld/extent/k-range) are the
// clearest way to spell these kernels.
#![allow(clippy::too_many_arguments)]

mod scalar;
#[cfg(target_arch = "x86_64")]
mod x86;

use std::sync::OnceLock;

/// Register-tile height: rows of `a` processed together.
pub(crate) const MR: usize = 4;
/// Register-tile width: columns of `out` processed together.
pub(crate) const NR: usize = 8;
/// K-panel depth: reduction slice summed into registers per pass.
pub(crate) const KC: usize = 256;
/// Fixed partial-sum lane count for f32 K-axis reductions (`gemm_bt_f32`):
/// every backend accumulates into exactly this many lanes and reduces them
/// in ascending index order, which is what keeps a 128-bit, a 256-bit, and
/// a scalar implementation bit-identical.
pub(crate) const LANES: usize = 8;

/// Environment variable that overrides kernel-backend detection
/// (`scalar` | `sse2` | `avx2`). Unknown or unsupported values panic
/// loudly — a CI job forcing the fallback must never silently run SIMD.
pub const BACKEND_ENV: &str = "APSQ_KERNEL_BACKEND";

/// The micro-kernel implementation the execution engine dispatches to.
///
/// All backends produce **bit-identical** results (see the module docs for
/// why that holds even for f32); they differ only in speed. The default is
/// [`KernelBackend::detect`], cached per process; tests and CI force a
/// specific backend with [`crate::ExecEngine::with_backend`] or the
/// [`BACKEND_ENV`] environment variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelBackend {
    /// Portable fixed-width-lane reference — the semantic definition.
    Scalar,
    /// 128-bit `core::arch::x86_64` intrinsics (x86-64 baseline).
    Sse2,
    /// 256-bit AVX2 intrinsics (runtime-detected).
    Avx2,
}

impl KernelBackend {
    /// The best supported backend on this host, resolved once per process
    /// (cached in a `OnceLock`): the [`BACKEND_ENV`] override if set,
    /// otherwise AVX2 when `is_x86_feature_detected!` reports it, SSE2 on
    /// any other x86-64, scalar elsewhere.
    ///
    /// # Panics
    ///
    /// Panics if [`BACKEND_ENV`] names an unknown backend or one this CPU
    /// cannot run.
    pub fn detect() -> KernelBackend {
        static DETECTED: OnceLock<KernelBackend> = OnceLock::new();
        *DETECTED.get_or_init(|| match std::env::var(BACKEND_ENV) {
            Ok(name) => {
                let bk = KernelBackend::from_name(&name).unwrap_or_else(|| {
                    panic!("{BACKEND_ENV}={name}: unknown backend (scalar|sse2|avx2)")
                });
                assert!(
                    bk.is_supported(),
                    "{BACKEND_ENV}={name}: backend not supported on this CPU"
                );
                bk
            }
            Err(_) => Self::native_best(),
        })
    }

    fn native_best() -> KernelBackend {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                KernelBackend::Avx2
            } else {
                KernelBackend::Sse2
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            KernelBackend::Scalar
        }
    }

    /// Whether this backend can run on the current host.
    pub fn is_supported(self) -> bool {
        match self {
            KernelBackend::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            KernelBackend::Sse2 => true,
            #[cfg(target_arch = "x86_64")]
            KernelBackend::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// Every backend variant, fastest last (sweep order for benches).
    pub fn all() -> [KernelBackend; 3] {
        [
            KernelBackend::Scalar,
            KernelBackend::Sse2,
            KernelBackend::Avx2,
        ]
    }

    /// The backends this host can actually run, scalar first.
    pub fn supported() -> Vec<KernelBackend> {
        Self::all()
            .into_iter()
            .filter(|b| b.is_supported())
            .collect()
    }

    /// Stable lowercase name (`"scalar"` | `"sse2"` | `"avx2"`) — the
    /// spelling benches record in `BENCH_*.json` and [`BACKEND_ENV`]
    /// accepts.
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Sse2 => "sse2",
            KernelBackend::Avx2 => "avx2",
        }
    }

    /// Parses a [`KernelBackend::name`] spelling (case-insensitive).
    pub fn from_name(name: &str) -> Option<KernelBackend> {
        match name.to_ascii_lowercase().as_str() {
            "scalar" => Some(KernelBackend::Scalar),
            "sse2" => Some(KernelBackend::Sse2),
            "avx2" => Some(KernelBackend::Avx2),
            _ => None,
        }
    }
}

impl std::fmt::Display for KernelBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

// ------------------------------------------------------------------ dispatch

/// `out[i, j] += Σ_{l ∈ [k0, k1)} a[i, l] · b[l, j]` for `i < m`, `j < n`,
/// with row strides `lda`, `ldb`, `ldo`.
pub(crate) fn gemm_f32(
    bk: KernelBackend,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    ldo: usize,
    m: usize,
    n: usize,
    k0: usize,
    k1: usize,
) {
    match bk {
        KernelBackend::Scalar => scalar::gemm_f32(a, lda, b, ldb, out, ldo, m, n, k0, k1),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86-64 baseline — always present.
        KernelBackend::Sse2 => unsafe {
            x86::sse2_gemm_f32(a, lda, b, ldb, out, ldo, m, n, k0, k1)
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 engines only exist on hosts where detection
        // confirmed the feature (`ExecEngine::with_backend` asserts it).
        KernelBackend::Avx2 => unsafe {
            x86::avx2_gemm_f32(a, lda, b, ldb, out, ldo, m, n, k0, k1)
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("x86 backends are rejected at engine construction"),
    }
}

/// `out[i, j] += Σ_{l ∈ [k0, k1)} a[i, l] · b[j, l]` — `b` transposed
/// (`[N, K]` row-major), the backward-pass `dY · Wᵀ` primitive. The K-axis
/// reduction uses the pinned [`LANES`]-lane order (module docs).
pub(crate) fn gemm_bt_f32(
    bk: KernelBackend,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    ldo: usize,
    m: usize,
    n: usize,
    k0: usize,
    k1: usize,
) {
    match bk {
        KernelBackend::Scalar => scalar::gemm_bt_f32(a, lda, b, ldb, out, ldo, m, n, k0, k1),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86-64 baseline — always present.
        KernelBackend::Sse2 => unsafe {
            x86::sse2_gemm_bt_f32(a, lda, b, ldb, out, ldo, m, n, k0, k1)
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as in `gemm_f32`.
        KernelBackend::Avx2 => unsafe {
            x86::avx2_gemm_bt_f32(a, lda, b, ldb, out, ldo, m, n, k0, k1)
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("x86 backends are rejected at engine construction"),
    }
}

/// `out[i, j] += Σ_{l ∈ [k0, k1)} a[l, i] · b[l, j]` — `a` transposed
/// (`[K, M]` row-major), the weight-gradient `Xᵀ · dY` primitive.
///
/// Rows of `out` (columns of `a`) are independent, so the engine can
/// partition `[0, m)` across threads; the reduction order per element is
/// `l` increasing regardless of the partition or backend.
pub(crate) fn gemm_at_f32(
    bk: KernelBackend,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    ldo: usize,
    i0: usize,
    i1: usize,
    n: usize,
    k0: usize,
    k1: usize,
) {
    match bk {
        KernelBackend::Scalar => scalar::gemm_at_f32(a, lda, b, ldb, out, ldo, i0, i1, n, k0, k1),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86-64 baseline — always present.
        KernelBackend::Sse2 => unsafe {
            x86::sse2_gemm_at_f32(a, lda, b, ldb, out, ldo, i0, i1, n, k0, k1)
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as in `gemm_f32`.
        KernelBackend::Avx2 => unsafe {
            x86::avx2_gemm_at_f32(a, lda, b, ldb, out, ldo, i0, i1, n, k0, k1)
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("x86 backends are rejected at engine construction"),
    }
}

/// Exact integer micro-kernel:
/// `out[i, j] += Σ_{l ∈ [k0, k1)} a[i, l] · b[l, j]` with `i8` operands
/// widened to `i32` products, `i32` accumulation.
pub(crate) fn gemm_i8(
    bk: KernelBackend,
    a: &[i8],
    lda: usize,
    b: &[i8],
    ldb: usize,
    out: &mut [i32],
    ldo: usize,
    m: usize,
    n: usize,
    k0: usize,
    k1: usize,
) {
    match bk {
        KernelBackend::Scalar => scalar::gemm_i8(a, lda, b, ldb, out, ldo, m, n, k0, k1),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86-64 baseline — always present.
        KernelBackend::Sse2 => unsafe { x86::sse2_gemm_i8(a, lda, b, ldb, out, ldo, m, n, k0, k1) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as in `gemm_f32`.
        KernelBackend::Avx2 => unsafe { x86::avx2_gemm_i8(a, lda, b, ldb, out, ldo, m, n, k0, k1) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("x86 backends are rejected at engine construction"),
    }
}

/// Exact integer transposed-B micro-kernel:
/// `out[i, j] += Σ_{l ∈ [k0, k1)} a[i, l] · b[j, l]` — `b` stored `[N, K]`
/// row-major, the layout a weight-stationary PE array keeps its filter
/// rows in. Unit-stride dot products on both operands make this the
/// decode-path (`[B, d] × Wᵀ`) primitive — and the kernel where the AVX2
/// i8×i8→i16 widening multiply-add pays off hardest.
pub(crate) fn gemm_bt_i8(
    bk: KernelBackend,
    a: &[i8],
    lda: usize,
    b: &[i8],
    ldb: usize,
    out: &mut [i32],
    ldo: usize,
    m: usize,
    n: usize,
    k0: usize,
    k1: usize,
) {
    match bk {
        KernelBackend::Scalar => scalar::gemm_bt_i8(a, lda, b, ldb, out, ldo, m, n, k0, k1),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86-64 baseline — always present.
        KernelBackend::Sse2 => unsafe {
            x86::sse2_gemm_bt_i8(a, lda, b, ldb, out, ldo, m, n, k0, k1)
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as in `gemm_f32`.
        KernelBackend::Avx2 => unsafe {
            x86::avx2_gemm_bt_i8(a, lda, b, ldb, out, ldo, m, n, k0, k1)
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("x86 backends are rejected at engine construction"),
    }
}

// ------------------------------------------------------- shared helpers

/// Reduces the [`LANES`] f32 partial sums in ascending index order —
/// the one and only lane-reduction every backend is allowed to use.
#[inline]
pub(super) fn reduce_lanes_f32(lanes: &[f32; LANES]) -> f32 {
    let mut s = 0.0f32;
    for &v in lanes {
        s += v;
    }
    s
}

/// The pinned-order f32 dot product over `[k0, k1)` slices: [`LANES`]
/// strided partial sums (lane `c` takes chunk offset `c`; the short tail
/// folds into lanes `0..rem`), reduced by [`reduce_lanes_f32`]. This is the
/// scalar definition the SIMD `gemm_bt_f32` variants replicate bit-for-bit.
#[inline]
pub(super) fn dot_f32_lanes(x: &[f32], y: &[f32]) -> f32 {
    debug_assert_eq!(x.len(), y.len());
    let mut lanes = [0.0f32; LANES];
    let full = x.len() - x.len() % LANES;
    let mut t = 0;
    while t < full {
        for (c, lane) in lanes.iter_mut().enumerate() {
            *lane += x[t + c] * y[t + c];
        }
        t += LANES;
    }
    for (c, i) in (full..x.len()).enumerate() {
        lanes[c] += x[i] * y[i];
    }
    reduce_lanes_f32(&lanes)
}

/// Ragged-edge f32 tile: rows `[i0, i1)` × cols `[j0, j1)` over the K panel
/// `[kp, kq)`, in ≤[`NR`]-wide column blocks with lane-array accumulation in
/// `l` order — the per-element reduction order of the full-size register
/// tile. The single tail path shared by the scalar kernel's partial-NR,
/// partial-MR, and remainder cases **and** by every SIMD variant's edges,
/// so edge handling is written (and audited) once.
#[inline]
pub(super) fn tail_f32(
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    ldo: usize,
    i0: usize,
    i1: usize,
    j0: usize,
    j1: usize,
    kp: usize,
    kq: usize,
) {
    for i in i0..i1 {
        let mut j = j0;
        while j < j1 {
            let jn = usize::min(j + NR, j1);
            let mut acc = [0.0f32; NR];
            for l in kp..kq {
                let av = a[i * lda + l];
                for (c, accv) in acc[..jn - j].iter_mut().enumerate() {
                    *accv += av * b[l * ldb + j + c];
                }
            }
            let orow = &mut out[i * ldo + j..i * ldo + jn];
            for (o, &v) in orow.iter_mut().zip(acc.iter()) {
                *o += v;
            }
            j = jn;
        }
    }
}

/// Ragged-edge i8→i32 tile, the integer twin of [`tail_f32`]: one tail
/// helper for every partial-NR / partial-MR / remainder case of the scalar
/// kernel and every SIMD variant's edges.
#[inline]
pub(super) fn tail_i8(
    a: &[i8],
    lda: usize,
    b: &[i8],
    ldb: usize,
    out: &mut [i32],
    ldo: usize,
    i0: usize,
    i1: usize,
    j0: usize,
    j1: usize,
    kp: usize,
    kq: usize,
) {
    for i in i0..i1 {
        let mut j = j0;
        while j < j1 {
            let jn = usize::min(j + NR, j1);
            let mut acc = [0i32; NR];
            for l in kp..kq {
                let av = a[i * lda + l] as i32;
                for (c, accv) in acc[..jn - j].iter_mut().enumerate() {
                    *accv += av * b[l * ldb + j + c] as i32;
                }
            }
            let orow = &mut out[i * ldo + j..i * ldo + jn];
            for (o, &v) in orow.iter_mut().zip(acc.iter()) {
                *o += v;
            }
            j = jn;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_f32(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                for l in 0..k {
                    acc += (a[i * k + l] as f64) * (b[l * n + j] as f64);
                }
                out[i * n + j] = acc as f32;
            }
        }
        out
    }

    #[test]
    fn blocked_matches_naive_at_awkward_sizes() {
        for bk in KernelBackend::supported() {
            for (m, k, n) in [(1, 1, 1), (5, 7, 9), (13, 300, 17), (MR, KC + 3, NR)] {
                let a: Vec<f32> = (0..m * k)
                    .map(|x| ((x % 23) as f32) * 0.125 - 1.0)
                    .collect();
                let b: Vec<f32> = (0..k * n).map(|x| ((x % 19) as f32) * 0.25 - 2.0).collect();
                let mut out = vec![0.0f32; m * n];
                gemm_f32(bk, &a, k, &b, n, &mut out, n, m, n, 0, k);
                let want = naive_f32(&a, &b, m, k, n);
                for (x, y) in out.iter().zip(want.iter()) {
                    assert!((x - y).abs() <= 1e-3 * (1.0 + y.abs()), "{bk} {m}x{k}x{n}");
                }
            }
        }
    }

    #[test]
    fn k_ranges_partition_the_reduction_exactly_i8() {
        for bk in KernelBackend::supported() {
            let (m, k, n) = (6, 40, 10);
            let a: Vec<i8> = (0..m * k).map(|x| ((x * 37 + 5) % 255) as i8).collect();
            let b: Vec<i8> = (0..k * n).map(|x| ((x * 53 + 7) % 251) as i8).collect();
            let mut full = vec![0i32; m * n];
            gemm_i8(bk, &a, k, &b, n, &mut full, n, m, n, 0, k);
            let mut tiled = vec![0i32; m * n];
            for (k0, k1) in [(0, 13), (13, 14), (14, 40)] {
                gemm_i8(bk, &a, k, &b, n, &mut tiled, n, m, n, k0, k1);
            }
            assert_eq!(full, tiled, "{bk}");
        }
    }

    #[test]
    fn leading_dimensions_address_sub_blocks() {
        for bk in KernelBackend::supported() {
            // Compute into the top-left 2×3 corner of a 4×5 out buffer,
            // reading a 2-column slice of b.
            let (m, k, n) = (2usize, 3usize, 3usize);
            let a: Vec<f32> = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // [2,3]
            let b: Vec<f32> = (0..k * 5).map(|x| x as f32).collect(); // [3,5], ldb=5
            let mut out = vec![0.0f32; 4 * 5];
            gemm_f32(bk, &a, k, &b, 5, &mut out, 5, m, n, 0, k);
            for i in 0..m {
                for j in 0..n {
                    let want: f32 = (0..k).map(|l| a[i * k + l] * b[l * 5 + j]).sum();
                    assert_eq!(out[i * 5 + j], want, "{bk}");
                }
            }
            // Untouched region stays zero.
            assert!(out[5 * 3..].iter().all(|&v| v == 0.0), "{bk}");
        }
    }

    #[test]
    fn bt_and_at_match_plain() {
        for bk in KernelBackend::supported() {
            let (m, k, n) = (5, 11, 4);
            let a: Vec<f32> = (0..m * k).map(|x| (x % 13) as f32 - 6.0).collect();
            let b: Vec<f32> = (0..k * n).map(|x| (x % 7) as f32 - 3.0).collect();
            let mut plain = vec![0.0f32; m * n];
            gemm_f32(bk, &a, k, &b, n, &mut plain, n, m, n, 0, k);

            // bᵀ stored [N, K]. The bt kernel reduces K in the pinned
            // lane order, so compare within rounding, not bitwise.
            let mut bt = vec![0.0f32; n * k];
            for l in 0..k {
                for j in 0..n {
                    bt[j * k + l] = b[l * n + j];
                }
            }
            let mut out = vec![0.0f32; m * n];
            gemm_bt_f32(bk, &a, k, &bt, k, &mut out, n, m, n, 0, k);
            for (x, y) in out.iter().zip(plain.iter()) {
                assert!((x - y).abs() <= 1e-4 * (1.0 + y.abs()), "{bk}");
            }

            // aᵀ stored [K, M].
            let mut at = vec![0.0f32; k * m];
            for i in 0..m {
                for l in 0..k {
                    at[l * m + i] = a[i * k + l];
                }
            }
            let mut out = vec![0.0f32; m * n];
            gemm_at_f32(bk, &at, m, &b, n, &mut out, n, 0, m, n, 0, k);
            for (x, y) in out.iter().zip(plain.iter()) {
                assert!((x - y).abs() <= 1e-4 * (1.0 + y.abs()), "{bk}");
            }
        }
    }

    #[test]
    fn bt_i8_matches_plain_i8_and_partitions_k() {
        for bk in KernelBackend::supported() {
            let (m, k, n) = (5, 23, 7);
            let a: Vec<i8> = (0..m * k).map(|x| ((x * 37 + 5) % 255) as i8).collect();
            let b: Vec<i8> = (0..k * n).map(|x| ((x * 53 + 7) % 251) as i8).collect();
            let mut plain = vec![0i32; m * n];
            gemm_i8(bk, &a, k, &b, n, &mut plain, n, m, n, 0, k);

            // bᵀ stored [N, K].
            let mut bt = vec![0i8; n * k];
            for l in 0..k {
                for j in 0..n {
                    bt[j * k + l] = b[l * n + j];
                }
            }
            let mut out = vec![0i32; m * n];
            gemm_bt_i8(bk, &a, k, &bt, k, &mut out, n, m, n, 0, k);
            assert_eq!(out, plain, "{bk}");

            // K ranges partition the reduction exactly (integer addition).
            let mut tiled = vec![0i32; m * n];
            for (k0, k1) in [(0, 9), (9, 10), (10, 23)] {
                gemm_bt_i8(bk, &a, k, &bt, k, &mut tiled, n, m, n, k0, k1);
            }
            assert_eq!(tiled, plain, "{bk}");
        }
    }

    /// Every supported SIMD backend must agree with the scalar reference
    /// bit-for-bit, across ragged shapes and k-ranges — the unit-level
    /// smoke for the contract the backend proptests sweep at scale.
    #[test]
    fn simd_backends_bit_identical_to_scalar() {
        let shapes = [
            (1usize, 1usize, 1usize),
            (3, 5, 2),
            (MR, 16, NR),
            (MR + 1, 17, NR + 3),
            (2 * MR + 3, KC + 9, 3 * NR + 5),
            (7, LANES * 4 + 3, 9),
        ];
        for bk in KernelBackend::supported() {
            for &(m, k, n) in &shapes {
                let af: Vec<f32> = (0..m * k)
                    .map(|x| ((x * 31 + 7) % 101) as f32 * 0.03 - 1.5)
                    .collect();
                let bf: Vec<f32> = (0..k * n)
                    .map(|x| ((x * 17 + 3) % 97) as f32 * 0.05 - 2.4)
                    .collect();
                let ai: Vec<i8> = (0..m * k).map(|x| ((x * 37 + 11) % 255) as i8).collect();
                let bi: Vec<i8> = (0..k * n).map(|x| ((x * 73 + 5) % 251) as i8).collect();
                let btf: Vec<f32> = (0..n * k)
                    .map(|x| ((x * 13 + 1) % 89) as f32 * 0.04 - 1.8)
                    .collect();
                let bti: Vec<i8> = (0..n * k).map(|x| ((x * 29 + 3) % 253) as i8).collect();
                let atf: Vec<f32> = (0..k * m)
                    .map(|x| ((x * 11 + 5) % 83) as f32 * 0.06 - 2.5)
                    .collect();
                for (k0, k1) in [(0, k), (k / 3, k), (0, k - k / 4), (k / 3, 2 * k / 3 + 1)] {
                    let run_pair =
                        |want: &mut Vec<f32>,
                         got: &mut Vec<f32>,
                         f: &dyn Fn(KernelBackend, &mut [f32])| {
                            f(KernelBackend::Scalar, want);
                            f(bk, got);
                        };
                    let mut want = vec![0.0f32; m * n];
                    let mut got = vec![0.0f32; m * n];
                    run_pair(&mut want, &mut got, &|bk, out| {
                        gemm_f32(bk, &af, k, &bf, n, out, n, m, n, k0, k1)
                    });
                    assert_eq!(want, got, "gemm_f32 {bk} {m}x{k}x{n} [{k0},{k1})");
                    let mut want = vec![0.0f32; m * n];
                    let mut got = vec![0.0f32; m * n];
                    run_pair(&mut want, &mut got, &|bk, out| {
                        gemm_bt_f32(bk, &af, k, &btf, k, out, n, m, n, k0, k1)
                    });
                    assert_eq!(want, got, "gemm_bt_f32 {bk} {m}x{k}x{n} [{k0},{k1})");
                    let mut want = vec![0.0f32; m * n];
                    let mut got = vec![0.0f32; m * n];
                    run_pair(&mut want, &mut got, &|bk, out| {
                        gemm_at_f32(bk, &atf, m, &bf, n, out, n, 0, m, n, k0, k1)
                    });
                    assert_eq!(want, got, "gemm_at_f32 {bk} {m}x{k}x{n} [{k0},{k1})");

                    let mut want = vec![0i32; m * n];
                    let mut got = vec![0i32; m * n];
                    gemm_i8(
                        KernelBackend::Scalar,
                        &ai,
                        k,
                        &bi,
                        n,
                        &mut want,
                        n,
                        m,
                        n,
                        k0,
                        k1,
                    );
                    gemm_i8(bk, &ai, k, &bi, n, &mut got, n, m, n, k0, k1);
                    assert_eq!(want, got, "gemm_i8 {bk} {m}x{k}x{n} [{k0},{k1})");
                    let mut want = vec![0i32; m * n];
                    let mut got = vec![0i32; m * n];
                    gemm_bt_i8(
                        KernelBackend::Scalar,
                        &ai,
                        k,
                        &bti,
                        k,
                        &mut want,
                        n,
                        m,
                        n,
                        k0,
                        k1,
                    );
                    gemm_bt_i8(bk, &ai, k, &bti, k, &mut got, n, m, n, k0, k1);
                    assert_eq!(want, got, "gemm_bt_i8 {bk} {m}x{k}x{n} [{k0},{k1})");
                }
            }
        }
    }

    #[test]
    fn backend_names_round_trip() {
        for bk in KernelBackend::all() {
            assert_eq!(KernelBackend::from_name(bk.name()), Some(bk));
            assert_eq!(format!("{bk}"), bk.name());
        }
        assert_eq!(KernelBackend::from_name("AVX2"), Some(KernelBackend::Avx2));
        assert_eq!(KernelBackend::from_name("neon"), None);
    }

    #[test]
    fn detection_returns_a_supported_backend() {
        let bk = KernelBackend::detect();
        assert!(bk.is_supported());
        // Scalar is supported everywhere; x86-64 always has at least SSE2.
        assert!(KernelBackend::supported().contains(&KernelBackend::Scalar));
        #[cfg(target_arch = "x86_64")]
        assert!(KernelBackend::Sse2.is_supported());
    }
}
