//! Portable reference kernels — the semantic definition every SIMD
//! backend must reproduce bit-for-bit.
//!
//! Written with fixed-width lane arrays (the unrolled shape non-x86
//! autovectorizers digest well): the `MR×NR` register tile of the blocked
//! kernels, the [`LANES`]-lane K-dot of `gemm_bt_f32`. Ragged edges all go
//! through the shared [`tail_f32`]/[`tail_i8`] helpers, so the edge index
//! arithmetic — historically triplicated across partial-NR, partial-MR,
//! and remainder paths — is written once and shared with the SIMD
//! variants.

use super::{dot_f32_lanes, tail_f32, tail_i8, KC, MR, NR};

pub(super) fn gemm_f32(
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    ldo: usize,
    m: usize,
    n: usize,
    k0: usize,
    k1: usize,
) {
    let mut kp = k0;
    while kp < k1 {
        let kq = usize::min(kp + KC, k1);
        let mut i = 0;
        while i + MR <= m {
            let mut j = 0;
            while j + NR <= n {
                // Full MR×NR register tile.
                let mut acc = [[0.0f32; NR]; MR];
                for l in kp..kq {
                    let brow = &b[l * ldb + j..l * ldb + j + NR];
                    for (r, accr) in acc.iter_mut().enumerate() {
                        let av = a[(i + r) * lda + l];
                        for (c, accv) in accr.iter_mut().enumerate() {
                            *accv += av * brow[c];
                        }
                    }
                }
                for (r, accr) in acc.iter().enumerate() {
                    let orow = &mut out[(i + r) * ldo + j..(i + r) * ldo + j + NR];
                    for (o, &v) in orow.iter_mut().zip(accr.iter()) {
                        *o += v;
                    }
                }
                j += NR;
            }
            // Column remainder: same panel-local accumulation order.
            if j < n {
                tail_f32(a, lda, b, ldb, out, ldo, i, i + MR, j, n, kp, kq);
            }
            i += MR;
        }
        // Row remainder: one row at a time, still panel-accumulated.
        if i < m {
            tail_f32(a, lda, b, ldb, out, ldo, i, m, 0, n, kp, kq);
        }
        kp = kq;
    }
}

pub(super) fn gemm_bt_f32(
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    ldo: usize,
    m: usize,
    n: usize,
    k0: usize,
    k1: usize,
) {
    for i in 0..m {
        let arow = &a[i * lda + k0..i * lda + k1];
        for j in 0..n {
            let brow = &b[j * ldb + k0..j * ldb + k1];
            out[i * ldo + j] += dot_f32_lanes(arow, brow);
        }
    }
}

pub(super) fn gemm_at_f32(
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    ldo: usize,
    i0: usize,
    i1: usize,
    n: usize,
    k0: usize,
    k1: usize,
) {
    for l in k0..k1 {
        let brow = &b[l * ldb..l * ldb + n];
        for i in i0..i1 {
            // No zero-skip: 0.0 * inf/NaN must still poison the gradient,
            // exactly as the pre-engine matmul_at did.
            let av = a[l * lda + i];
            let orow = &mut out[(i - i0) * ldo..(i - i0) * ldo + n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
}

pub(super) fn gemm_i8(
    a: &[i8],
    lda: usize,
    b: &[i8],
    ldb: usize,
    out: &mut [i32],
    ldo: usize,
    m: usize,
    n: usize,
    k0: usize,
    k1: usize,
) {
    let mut kp = k0;
    while kp < k1 {
        let kq = usize::min(kp + KC, k1);
        let mut i = 0;
        while i + MR <= m {
            let mut j = 0;
            while j + NR <= n {
                let mut acc = [[0i32; NR]; MR];
                for l in kp..kq {
                    let brow = &b[l * ldb + j..l * ldb + j + NR];
                    for (r, accr) in acc.iter_mut().enumerate() {
                        let av = a[(i + r) * lda + l] as i32;
                        for (c, accv) in accr.iter_mut().enumerate() {
                            *accv += av * brow[c] as i32;
                        }
                    }
                }
                for (r, accr) in acc.iter().enumerate() {
                    let orow = &mut out[(i + r) * ldo + j..(i + r) * ldo + j + NR];
                    for (o, &v) in orow.iter_mut().zip(accr.iter()) {
                        *o += v;
                    }
                }
                j += NR;
            }
            if j < n {
                tail_i8(a, lda, b, ldb, out, ldo, i, i + MR, j, n, kp, kq);
            }
            i += MR;
        }
        if i < m {
            tail_i8(a, lda, b, ldb, out, ldo, i, m, 0, n, kp, kq);
        }
        kp = kq;
    }
}

pub(super) fn gemm_bt_i8(
    a: &[i8],
    lda: usize,
    b: &[i8],
    ldb: usize,
    out: &mut [i32],
    ldo: usize,
    m: usize,
    n: usize,
    k0: usize,
    k1: usize,
) {
    for i in 0..m {
        let arow = &a[i * lda + k0..i * lda + k1];
        for j in 0..n {
            let brow = &b[j * ldb + k0..j * ldb + k1];
            let mut acc = 0i32;
            for (&x, &y) in arow.iter().zip(brow.iter()) {
                acc += x as i32 * y as i32;
            }
            out[i * ldo + j] += acc;
        }
    }
}
