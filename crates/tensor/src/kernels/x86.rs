//! `core::arch::x86_64` kernel backends: 128-bit SSE2 (baseline, no
//! detection needed) and 256-bit AVX2 (runtime-detected).
//!
//! Bit-identity with the scalar reference is the design rule, not a test
//! afterthought:
//!
//! - f32 kernels use separate multiply and add intrinsics — never FMA,
//!   whose single rounding would diverge from the scalar two-rounding
//!   sequence.
//! - f32 kernels that vectorize along N (`gemm_f32`, `gemm_at_f32`) keep
//!   one output element per lane, so each element still reduces in `l`
//!   order, exactly like scalar.
//! - `gemm_bt_f32` maps SIMD lanes onto the pinned [`LANES`]-lane partial
//!   sums of [`super::dot_f32_lanes`] (SSE2 splits them across two
//!   128-bit registers), then reduces through the same lane array.
//! - Integer kernels accumulate in `i32`; any summation order is exact, so
//!   they are free to use `madd_epi16` widening reductions.
//!
//! Memory safety: every vector load/store first carves a bounds-checked
//! subslice of exactly the lanes it touches, then loads from the slice
//! pointer — out-of-range extents panic like the scalar kernels instead of
//! reading past the buffer.

use core::arch::x86_64::*;

use super::{reduce_lanes_f32, tail_f32, tail_i8, KC, LANES, MR, NR};

/// Sign-extends the low 8 bytes of `v` to 8×i16 without SSE4.1:
/// duplicate each byte into a 16-bit lane, then arithmetic-shift the copy
/// back down.
#[target_feature(enable = "sse2")]
#[inline]
fn sse2_cvtepi8_epi16(v: __m128i) -> __m128i {
    _mm_srai_epi16::<8>(_mm_unpacklo_epi8(v, v))
}

/// Loads 8 `i8` values from a bounds-checked slice as 8×i16.
#[target_feature(enable = "sse2")]
#[inline]
fn sse2_load8_i8_as_i16(s: &[i8]) -> __m128i {
    debug_assert!(s.len() >= 8);
    // SAFETY: caller's slice carries ≥8 elements; loadl reads exactly 8
    // bytes (unaligned allowed).
    sse2_cvtepi8_epi16(unsafe { _mm_loadl_epi64(s.as_ptr() as *const __m128i) })
}

/// Widens 8×i16 `v` times 8×i16 `w` into two 4×i32 product vectors
/// (elements 0..4 and 4..8) using the SSE2 mullo/mulhi split.
#[target_feature(enable = "sse2")]
#[inline]
fn sse2_mul_i16_to_i32(v: __m128i, w: __m128i) -> (__m128i, __m128i) {
    let lo = _mm_mullo_epi16(v, w);
    let hi = _mm_mulhi_epi16(v, w);
    (_mm_unpacklo_epi16(lo, hi), _mm_unpackhi_epi16(lo, hi))
}

/// Horizontal sum of 4×i32 — exact, so the order is free.
#[target_feature(enable = "sse2")]
#[inline]
fn sse2_hsum_i32(v: __m128i) -> i32 {
    let mut lanes = [0i32; 4];
    // SAFETY: 4-lane stack array matches the 128-bit store width.
    unsafe { _mm_storeu_si128(lanes.as_mut_ptr() as *mut __m128i, v) };
    lanes.iter().sum()
}

// ================================================================== SSE2

#[target_feature(enable = "sse2")]
pub(super) fn sse2_gemm_f32(
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    ldo: usize,
    m: usize,
    n: usize,
    k0: usize,
    k1: usize,
) {
    let mut kp = k0;
    while kp < k1 {
        let kq = usize::min(kp + KC, k1);
        let mut i = 0;
        while i + MR <= m {
            let mut j = 0;
            while j + NR <= n {
                // MR rows × NR cols, each row's accumulator split across
                // two 4-wide registers. Lane c still sums in l order.
                let mut acc = [[_mm_setzero_ps(); 2]; MR];
                for l in kp..kq {
                    let brow = &b[l * ldb + j..l * ldb + j + NR];
                    // SAFETY: brow has exactly NR = 8 elements.
                    let (bv0, bv1) = unsafe {
                        (
                            _mm_loadu_ps(brow.as_ptr()),
                            _mm_loadu_ps(brow.as_ptr().add(4)),
                        )
                    };
                    for (r, accr) in acc.iter_mut().enumerate() {
                        let av = _mm_set1_ps(a[(i + r) * lda + l]);
                        accr[0] = _mm_add_ps(accr[0], _mm_mul_ps(av, bv0));
                        accr[1] = _mm_add_ps(accr[1], _mm_mul_ps(av, bv1));
                    }
                }
                for (r, accr) in acc.iter().enumerate() {
                    let orow = &mut out[(i + r) * ldo + j..(i + r) * ldo + j + NR];
                    // SAFETY: orow has exactly NR = 8 elements.
                    unsafe {
                        let p = orow.as_mut_ptr();
                        _mm_storeu_ps(p, _mm_add_ps(_mm_loadu_ps(p), accr[0]));
                        _mm_storeu_ps(p.add(4), _mm_add_ps(_mm_loadu_ps(p.add(4)), accr[1]));
                    }
                }
                j += NR;
            }
            if j < n {
                tail_f32(a, lda, b, ldb, out, ldo, i, i + MR, j, n, kp, kq);
            }
            i += MR;
        }
        if i < m {
            tail_f32(a, lda, b, ldb, out, ldo, i, m, 0, n, kp, kq);
        }
        kp = kq;
    }
}

#[target_feature(enable = "sse2")]
pub(super) fn sse2_gemm_bt_f32(
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    ldo: usize,
    m: usize,
    n: usize,
    k0: usize,
    k1: usize,
) {
    for i in 0..m {
        let arow = &a[i * lda + k0..i * lda + k1];
        for j in 0..n {
            let brow = &b[j * ldb + k0..j * ldb + k1];
            out[i * ldo + j] += sse2_dot_f32(arow, brow);
        }
    }
}

/// [`super::dot_f32_lanes`] with lanes 0..4 in one register and 4..8 in
/// another — same per-lane sequence, same final reduction.
#[target_feature(enable = "sse2")]
#[inline]
fn sse2_dot_f32(x: &[f32], y: &[f32]) -> f32 {
    debug_assert_eq!(x.len(), y.len());
    let full = x.len() - x.len() % LANES;
    let mut acc0 = _mm_setzero_ps();
    let mut acc1 = _mm_setzero_ps();
    let mut t = 0;
    while t < full {
        let xs = &x[t..t + LANES];
        let ys = &y[t..t + LANES];
        // SAFETY: both chunks carry exactly LANES = 8 elements.
        unsafe {
            let xv0 = _mm_loadu_ps(xs.as_ptr());
            let xv1 = _mm_loadu_ps(xs.as_ptr().add(4));
            let yv0 = _mm_loadu_ps(ys.as_ptr());
            let yv1 = _mm_loadu_ps(ys.as_ptr().add(4));
            acc0 = _mm_add_ps(acc0, _mm_mul_ps(xv0, yv0));
            acc1 = _mm_add_ps(acc1, _mm_mul_ps(xv1, yv1));
        }
        t += LANES;
    }
    let mut lanes = [0.0f32; LANES];
    // SAFETY: lanes has 8 f32 slots, one 128-bit store into each half.
    unsafe {
        _mm_storeu_ps(lanes.as_mut_ptr(), acc0);
        _mm_storeu_ps(lanes.as_mut_ptr().add(4), acc1);
    }
    for (c, i) in (full..x.len()).enumerate() {
        lanes[c] += x[i] * y[i];
    }
    reduce_lanes_f32(&lanes)
}

#[target_feature(enable = "sse2")]
pub(super) fn sse2_gemm_at_f32(
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    ldo: usize,
    i0: usize,
    i1: usize,
    n: usize,
    k0: usize,
    k1: usize,
) {
    let wide = n - n % 4;
    for l in k0..k1 {
        let brow = &b[l * ldb..l * ldb + n];
        for i in i0..i1 {
            // No zero-skip: 0.0 * inf/NaN must still poison the gradient.
            let av = a[l * lda + i];
            let avv = _mm_set1_ps(av);
            let orow = &mut out[(i - i0) * ldo..(i - i0) * ldo + n];
            let mut j = 0;
            while j < wide {
                // SAFETY: j + 4 <= wide <= n bounds both row slices.
                unsafe {
                    let p = orow.as_mut_ptr().add(j);
                    let bv = _mm_loadu_ps(brow.as_ptr().add(j));
                    _mm_storeu_ps(p, _mm_add_ps(_mm_loadu_ps(p), _mm_mul_ps(avv, bv)));
                }
                j += 4;
            }
            for (o, &bv) in orow[wide..].iter_mut().zip(brow[wide..].iter()) {
                *o += av * bv;
            }
        }
    }
}

#[target_feature(enable = "sse2")]
pub(super) fn sse2_gemm_i8(
    a: &[i8],
    lda: usize,
    b: &[i8],
    ldb: usize,
    out: &mut [i32],
    ldo: usize,
    m: usize,
    n: usize,
    k0: usize,
    k1: usize,
) {
    let mut kp = k0;
    while kp < k1 {
        let kq = usize::min(kp + KC, k1);
        let mut i = 0;
        while i + MR <= m {
            let mut j = 0;
            while j + NR <= n {
                // MR rows × NR i32 accumulators (two 4-wide registers per
                // row). Integer adds are exact, so lane order is free.
                let mut acc = [[_mm_setzero_si128(); 2]; MR];
                for l in kp..kq {
                    let bv16 = sse2_load8_i8_as_i16(&b[l * ldb + j..l * ldb + j + NR]);
                    for (r, accr) in acc.iter_mut().enumerate() {
                        let av16 = _mm_set1_epi16(a[(i + r) * lda + l] as i16);
                        let (p0, p1) = sse2_mul_i16_to_i32(bv16, av16);
                        accr[0] = _mm_add_epi32(accr[0], p0);
                        accr[1] = _mm_add_epi32(accr[1], p1);
                    }
                }
                for (r, accr) in acc.iter().enumerate() {
                    let orow = &mut out[(i + r) * ldo + j..(i + r) * ldo + j + NR];
                    // SAFETY: orow has exactly NR = 8 i32 slots.
                    unsafe {
                        let p = orow.as_mut_ptr() as *mut __m128i;
                        _mm_storeu_si128(p, _mm_add_epi32(_mm_loadu_si128(p), accr[0]));
                        _mm_storeu_si128(
                            p.add(1),
                            _mm_add_epi32(_mm_loadu_si128(p.add(1)), accr[1]),
                        );
                    }
                }
                j += NR;
            }
            if j < n {
                tail_i8(a, lda, b, ldb, out, ldo, i, i + MR, j, n, kp, kq);
            }
            i += MR;
        }
        if i < m {
            tail_i8(a, lda, b, ldb, out, ldo, i, m, 0, n, kp, kq);
        }
        kp = kq;
    }
}

#[target_feature(enable = "sse2")]
pub(super) fn sse2_gemm_bt_i8(
    a: &[i8],
    lda: usize,
    b: &[i8],
    ldb: usize,
    out: &mut [i32],
    ldo: usize,
    m: usize,
    n: usize,
    k0: usize,
    k1: usize,
) {
    for i in 0..m {
        let arow = &a[i * lda + k0..i * lda + k1];
        for j in 0..n {
            let brow = &b[j * ldb + k0..j * ldb + k1];
            let klen = arow.len();
            let full = klen - klen % 8;
            let mut acc = _mm_setzero_si128();
            let mut t = 0;
            while t < full {
                let av16 = sse2_load8_i8_as_i16(&arow[t..t + 8]);
                let bv16 = sse2_load8_i8_as_i16(&brow[t..t + 8]);
                // i8×i8 products fit i16; madd pairs them into 4×i32.
                acc = _mm_add_epi32(acc, _mm_madd_epi16(av16, bv16));
                t += 8;
            }
            let mut sum = sse2_hsum_i32(acc);
            for (&x, &y) in arow[full..].iter().zip(brow[full..].iter()) {
                sum += x as i32 * y as i32;
            }
            out[i * ldo + j] += sum;
        }
    }
}

// ================================================================== AVX2

/// Horizontal sum of 8×i32 — exact, so the order is free.
#[target_feature(enable = "avx2")]
#[inline]
fn avx2_hsum_i32(v: __m256i) -> i32 {
    let mut lanes = [0i32; 8];
    // SAFETY: 8-lane stack array matches the 256-bit store width.
    unsafe { _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, v) };
    lanes.iter().sum()
}

/// Loads 16 `i8` values from a bounds-checked slice as 16×i16.
#[target_feature(enable = "avx2")]
#[inline]
fn avx2_load16_i8_as_i16(s: &[i8]) -> __m256i {
    debug_assert!(s.len() >= 16);
    // SAFETY: the slice carries ≥16 bytes for the 128-bit load.
    _mm256_cvtepi8_epi16(unsafe { _mm_loadu_si128(s.as_ptr() as *const __m128i) })
}

#[target_feature(enable = "avx2")]
pub(super) fn avx2_gemm_f32(
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    ldo: usize,
    m: usize,
    n: usize,
    k0: usize,
    k1: usize,
) {
    let mut kp = k0;
    while kp < k1 {
        let kq = usize::min(kp + KC, k1);
        let mut i = 0;
        while i + MR <= m {
            let mut j = 0;
            // MR rows × two 8-wide registers (a 4×16 tile): each a-value
            // broadcast feeds two column vectors, halving the broadcast
            // cost per MAC. Every output element still sums its own lane
            // in l order with separate mul and add — the scalar sequence
            // — so the wider tile cannot change a bit.
            while j + 2 * NR <= n {
                let mut acc0 = [_mm256_setzero_ps(); MR];
                let mut acc1 = [_mm256_setzero_ps(); MR];
                for l in kp..kq {
                    let brow = &b[l * ldb + j..l * ldb + j + 2 * NR];
                    // SAFETY: brow has exactly 2·NR = 16 elements.
                    let (bv0, bv1) = unsafe {
                        (
                            _mm256_loadu_ps(brow.as_ptr()),
                            _mm256_loadu_ps(brow.as_ptr().add(NR)),
                        )
                    };
                    for r in 0..MR {
                        let av = _mm256_set1_ps(a[(i + r) * lda + l]);
                        acc0[r] = _mm256_add_ps(acc0[r], _mm256_mul_ps(av, bv0));
                        acc1[r] = _mm256_add_ps(acc1[r], _mm256_mul_ps(av, bv1));
                    }
                }
                for r in 0..MR {
                    let orow = &mut out[(i + r) * ldo + j..(i + r) * ldo + j + 2 * NR];
                    // SAFETY: orow has exactly 2·NR = 16 elements.
                    unsafe {
                        let p = orow.as_mut_ptr();
                        _mm256_storeu_ps(p, _mm256_add_ps(_mm256_loadu_ps(p), acc0[r]));
                        let p1 = p.add(NR);
                        _mm256_storeu_ps(p1, _mm256_add_ps(_mm256_loadu_ps(p1), acc1[r]));
                    }
                }
                j += 2 * NR;
            }
            while j + NR <= n {
                // Narrow 4×8 tile for the last full-NR block.
                let mut acc = [_mm256_setzero_ps(); MR];
                for l in kp..kq {
                    let brow = &b[l * ldb + j..l * ldb + j + NR];
                    // SAFETY: brow has exactly NR = 8 elements.
                    let bv = unsafe { _mm256_loadu_ps(brow.as_ptr()) };
                    for (r, accr) in acc.iter_mut().enumerate() {
                        let av = _mm256_set1_ps(a[(i + r) * lda + l]);
                        *accr = _mm256_add_ps(*accr, _mm256_mul_ps(av, bv));
                    }
                }
                for (r, accr) in acc.iter().enumerate() {
                    let orow = &mut out[(i + r) * ldo + j..(i + r) * ldo + j + NR];
                    // SAFETY: orow has exactly NR = 8 elements.
                    unsafe {
                        let p = orow.as_mut_ptr();
                        _mm256_storeu_ps(p, _mm256_add_ps(_mm256_loadu_ps(p), *accr));
                    }
                }
                j += NR;
            }
            if j < n {
                tail_f32(a, lda, b, ldb, out, ldo, i, i + MR, j, n, kp, kq);
            }
            i += MR;
        }
        if i < m {
            tail_f32(a, lda, b, ldb, out, ldo, i, m, 0, n, kp, kq);
        }
        kp = kq;
    }
}

#[target_feature(enable = "avx2")]
pub(super) fn avx2_gemm_bt_f32(
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    ldo: usize,
    m: usize,
    n: usize,
    k0: usize,
    k1: usize,
) {
    for i in 0..m {
        let arow = &a[i * lda + k0..i * lda + k1];
        for j in 0..n {
            let brow = &b[j * ldb + k0..j * ldb + k1];
            out[i * ldo + j] += avx2_dot_f32(arow, brow);
        }
    }
}

/// [`super::dot_f32_lanes`] with all [`LANES`] partial sums in one 256-bit
/// register — vector lane c IS pinned lane c.
#[target_feature(enable = "avx2")]
#[inline]
fn avx2_dot_f32(x: &[f32], y: &[f32]) -> f32 {
    debug_assert_eq!(x.len(), y.len());
    let full = x.len() - x.len() % LANES;
    let mut acc = _mm256_setzero_ps();
    let mut t = 0;
    while t < full {
        let xs = &x[t..t + LANES];
        let ys = &y[t..t + LANES];
        // SAFETY: both chunks carry exactly LANES = 8 elements.
        unsafe {
            let xv = _mm256_loadu_ps(xs.as_ptr());
            let yv = _mm256_loadu_ps(ys.as_ptr());
            acc = _mm256_add_ps(acc, _mm256_mul_ps(xv, yv));
        }
        t += LANES;
    }
    let mut lanes = [0.0f32; LANES];
    // SAFETY: lanes has exactly 8 f32 slots for the 256-bit store.
    unsafe { _mm256_storeu_ps(lanes.as_mut_ptr(), acc) };
    for (c, i) in (full..x.len()).enumerate() {
        lanes[c] += x[i] * y[i];
    }
    reduce_lanes_f32(&lanes)
}

#[target_feature(enable = "avx2")]
pub(super) fn avx2_gemm_at_f32(
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    ldo: usize,
    i0: usize,
    i1: usize,
    n: usize,
    k0: usize,
    k1: usize,
) {
    let wide = n - n % NR;
    for l in k0..k1 {
        let brow = &b[l * ldb..l * ldb + n];
        for i in i0..i1 {
            // No zero-skip: 0.0 * inf/NaN must still poison the gradient.
            let av = a[l * lda + i];
            let avv = _mm256_set1_ps(av);
            let orow = &mut out[(i - i0) * ldo..(i - i0) * ldo + n];
            let mut j = 0;
            while j < wide {
                // SAFETY: j + 8 <= wide <= n bounds both row slices.
                unsafe {
                    let p = orow.as_mut_ptr().add(j);
                    let bv = _mm256_loadu_ps(brow.as_ptr().add(j));
                    _mm256_storeu_ps(p, _mm256_add_ps(_mm256_loadu_ps(p), _mm256_mul_ps(avv, bv)));
                }
                j += NR;
            }
            for (o, &bv) in orow[wide..].iter_mut().zip(brow[wide..].iter()) {
                *o += av * bv;
            }
        }
    }
}

#[target_feature(enable = "avx2")]
pub(super) fn avx2_gemm_i8(
    a: &[i8],
    lda: usize,
    b: &[i8],
    ldb: usize,
    out: &mut [i32],
    ldo: usize,
    m: usize,
    n: usize,
    k0: usize,
    k1: usize,
) {
    let mut kp = k0;
    while kp < k1 {
        let kq = usize::min(kp + KC, k1);
        let mut i = 0;
        while i + MR <= m {
            let mut j = 0;
            while j + NR <= n {
                // MR rows × one 8×i32 register each: widen b's 8 codes to
                // i32 lanes once per l, broadcast-multiply per row.
                let mut acc = [_mm256_setzero_si256(); MR];
                for l in kp..kq {
                    let brow = &b[l * ldb + j..l * ldb + j + NR];
                    // SAFETY: brow has exactly NR = 8 bytes for the
                    // 64-bit load.
                    let bv8 = unsafe { _mm_loadl_epi64(brow.as_ptr() as *const __m128i) };
                    let bv32 = _mm256_cvtepi8_epi32(bv8);
                    for (r, accr) in acc.iter_mut().enumerate() {
                        let av = _mm256_set1_epi32(a[(i + r) * lda + l] as i32);
                        *accr = _mm256_add_epi32(*accr, _mm256_mullo_epi32(av, bv32));
                    }
                }
                for (r, accr) in acc.iter().enumerate() {
                    let orow = &mut out[(i + r) * ldo + j..(i + r) * ldo + j + NR];
                    // SAFETY: orow has exactly NR = 8 i32 slots.
                    unsafe {
                        let p = orow.as_mut_ptr() as *mut __m256i;
                        _mm256_storeu_si256(p, _mm256_add_epi32(_mm256_loadu_si256(p), *accr));
                    }
                }
                j += NR;
            }
            if j < n {
                tail_i8(a, lda, b, ldb, out, ldo, i, i + MR, j, n, kp, kq);
            }
            i += MR;
        }
        if i < m {
            tail_i8(a, lda, b, ldb, out, ldo, i, m, 0, n, kp, kq);
        }
        kp = kq;
    }
}

#[target_feature(enable = "avx2")]
pub(super) fn avx2_gemm_bt_i8(
    a: &[i8],
    lda: usize,
    b: &[i8],
    ldb: usize,
    out: &mut [i32],
    ldo: usize,
    m: usize,
    n: usize,
    k0: usize,
    k1: usize,
) {
    let klen = k1 - k0;
    let full32 = klen - klen % 32;
    let full16 = klen - klen % 16;
    for i in 0..m {
        let arow = &a[i * lda + k0..i * lda + k1];
        let mut j = 0;
        // Four columns at a time: each a-chunk is loaded/widened once and
        // feeds four madds, and the four dot products collapse together
        // in one hadd tree instead of four scalar-extract reductions.
        // This is what keeps the shallow APSQ k-tiles (depth 16) from
        // being reduction-bound. Integer adds are exact in any order, so
        // the regrouping cannot change a single output bit.
        while j + 4 <= n {
            let b0 = &b[j * ldb + k0..j * ldb + k1];
            let b1 = &b[(j + 1) * ldb + k0..(j + 1) * ldb + k1];
            let b2 = &b[(j + 2) * ldb + k0..(j + 2) * ldb + k1];
            let b3 = &b[(j + 3) * ldb + k0..(j + 3) * ldb + k1];
            let mut acc0 = _mm256_setzero_si256();
            let mut acc1 = _mm256_setzero_si256();
            let mut acc2 = _mm256_setzero_si256();
            let mut acc3 = _mm256_setzero_si256();
            let mut t = 0;
            while t < full16 {
                let av = avx2_load16_i8_as_i16(&arow[t..t + 16]);
                acc0 = _mm256_add_epi32(
                    acc0,
                    _mm256_madd_epi16(av, avx2_load16_i8_as_i16(&b0[t..t + 16])),
                );
                acc1 = _mm256_add_epi32(
                    acc1,
                    _mm256_madd_epi16(av, avx2_load16_i8_as_i16(&b1[t..t + 16])),
                );
                acc2 = _mm256_add_epi32(
                    acc2,
                    _mm256_madd_epi16(av, avx2_load16_i8_as_i16(&b2[t..t + 16])),
                );
                acc3 = _mm256_add_epi32(
                    acc3,
                    _mm256_madd_epi16(av, avx2_load16_i8_as_i16(&b3[t..t + 16])),
                );
                t += 16;
            }
            // hadd twice folds pairs within each 128-bit lane, the third
            // level is the lane add: lanes end up [sum0, sum1, sum2, sum3].
            let h01 = _mm256_hadd_epi32(acc0, acc1);
            let h23 = _mm256_hadd_epi32(acc2, acc3);
            let h = _mm256_hadd_epi32(h01, h23);
            let sums = _mm_add_epi32(_mm256_castsi256_si128(h), _mm256_extracti128_si256::<1>(h));
            let mut tail = [0i32; 4];
            for (dst, brow) in tail.iter_mut().zip([b0, b1, b2, b3]) {
                for (&x, &y) in arow[full16..].iter().zip(brow[full16..].iter()) {
                    *dst += x as i32 * y as i32;
                }
            }
            let orow = &mut out[i * ldo + j..i * ldo + j + 4];
            // SAFETY: orow and tail both hold exactly 4 i32 slots.
            unsafe {
                let p = orow.as_mut_ptr() as *mut __m128i;
                let tv = _mm_loadu_si128(tail.as_ptr() as *const __m128i);
                _mm_storeu_si128(
                    p,
                    _mm_add_epi32(_mm_loadu_si128(p), _mm_add_epi32(sums, tv)),
                );
            }
            j += 4;
        }
        while j < n {
            let brow = &b[j * ldb + k0..j * ldb + k1];
            // Two independent accumulators hide the madd latency on the
            // 2×-unrolled main loop; integer adds make the split exact.
            let mut acc0 = _mm256_setzero_si256();
            let mut acc1 = _mm256_setzero_si256();
            let mut t = 0;
            while t < full32 {
                let av0 = avx2_load16_i8_as_i16(&arow[t..t + 16]);
                let bv0 = avx2_load16_i8_as_i16(&brow[t..t + 16]);
                let av1 = avx2_load16_i8_as_i16(&arow[t + 16..t + 32]);
                let bv1 = avx2_load16_i8_as_i16(&brow[t + 16..t + 32]);
                acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(av0, bv0));
                acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(av1, bv1));
                t += 32;
            }
            while t < full16 {
                let av = avx2_load16_i8_as_i16(&arow[t..t + 16]);
                let bv = avx2_load16_i8_as_i16(&brow[t..t + 16]);
                acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(av, bv));
                t += 16;
            }
            let mut sum = avx2_hsum_i32(_mm256_add_epi32(acc0, acc1));
            for (&x, &y) in arow[full16..].iter().zip(brow[full16..].iter()) {
                sum += x as i32 * y as i32;
            }
            out[i * ldo + j] += sum;
            j += 1;
        }
    }
}
