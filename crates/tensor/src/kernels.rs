//! Cache-blocked, register-tiled GEMM micro-kernels.
//!
//! These are the serial building blocks the [`crate::exec::ExecEngine`]
//! dispatches over its worker pool. Every kernel:
//!
//! - operates on an explicit `[k0, k1)` slice of the reduction axis, so the
//!   same code path serves full GEMMs and K-tiled partial-sum (PSUM) tiles;
//! - takes leading dimensions (`lda`/`ldb`/`ldo`), so the accelerator
//!   simulator can run it over sub-blocks of larger matrices in place;
//! - **accumulates** into `out` (callers zero the buffer when they want a
//!   plain product), which is what makes K-panel streaming additive;
//! - sums each K panel into register-resident accumulators before touching
//!   `out`, with a fixed panel schedule, so the floating-point reduction
//!   order for any output element depends only on the kernel — never on
//!   how rows were partitioned across threads. Integer kernels are exact
//!   regardless; this is what makes the parallel engine bit-identical to
//!   the serial one.
//!
//! The blocking constants follow the classic BLIS/GotoBLAS decomposition,
//! sized for the L1/L2 of a commodity core: `MR×NR` register tiles swept
//! over `KC`-deep panels.

// BLAS-convention argument lists (operand/ld/extent/k-range) are the
// clearest way to spell these kernels.
#![allow(clippy::too_many_arguments)]

/// Register-tile height: rows of `a` processed together.
pub(crate) const MR: usize = 4;
/// Register-tile width: columns of `out` processed together.
const NR: usize = 8;
/// K-panel depth: reduction slice summed into registers per pass.
const KC: usize = 256;

/// `out[i, j] += Σ_{l ∈ [k0, k1)} a[i, l] · b[l, j]` for `i < m`, `j < n`,
/// with row strides `lda`, `ldb`, `ldo`.
pub(crate) fn gemm_f32(
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    ldo: usize,
    m: usize,
    n: usize,
    k0: usize,
    k1: usize,
) {
    let mut kp = k0;
    while kp < k1 {
        let kq = usize::min(kp + KC, k1);
        let mut i = 0;
        while i + MR <= m {
            let mut j = 0;
            while j + NR <= n {
                // Full MR×NR register tile.
                let mut acc = [[0.0f32; NR]; MR];
                for l in kp..kq {
                    let brow = &b[l * ldb + j..l * ldb + j + NR];
                    for (r, accr) in acc.iter_mut().enumerate() {
                        let av = a[(i + r) * lda + l];
                        for (c, accv) in accr.iter_mut().enumerate() {
                            *accv += av * brow[c];
                        }
                    }
                }
                for (r, accr) in acc.iter().enumerate() {
                    let orow = &mut out[(i + r) * ldo + j..(i + r) * ldo + j + NR];
                    for (o, &v) in orow.iter_mut().zip(accr.iter()) {
                        *o += v;
                    }
                }
                j += NR;
            }
            // Column remainder: same panel-local accumulation order.
            if j < n {
                for r in 0..MR {
                    let mut acc = [0.0f32; NR];
                    for l in kp..kq {
                        let av = a[(i + r) * lda + l];
                        for (c, accv) in acc[..n - j].iter_mut().enumerate() {
                            *accv += av * b[l * ldb + j + c];
                        }
                    }
                    let orow = &mut out[(i + r) * ldo + j..(i + r) * ldo + n];
                    for (o, &v) in orow.iter_mut().zip(acc.iter()) {
                        *o += v;
                    }
                }
            }
            i += MR;
        }
        // Row remainder: one row at a time, still panel-accumulated.
        while i < m {
            let mut j = 0;
            while j < n {
                let jn = usize::min(j + NR, n);
                let mut acc = [0.0f32; NR];
                for l in kp..kq {
                    let av = a[i * lda + l];
                    for (c, accv) in acc[..jn - j].iter_mut().enumerate() {
                        *accv += av * b[l * ldb + j + c];
                    }
                }
                let orow = &mut out[i * ldo + j..i * ldo + jn];
                for (o, &v) in orow.iter_mut().zip(acc.iter()) {
                    *o += v;
                }
                j = jn;
            }
            i += 1;
        }
        kp = kq;
    }
}

/// `out[i, j] += Σ_{l ∈ [k0, k1)} a[i, l] · b[j, l]` — `b` transposed
/// (`[N, K]` row-major), the backward-pass `dY · Wᵀ` primitive.
pub(crate) fn gemm_bt_f32(
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    ldo: usize,
    m: usize,
    n: usize,
    k0: usize,
    k1: usize,
) {
    for i in 0..m {
        let arow = &a[i * lda + k0..i * lda + k1];
        for j in 0..n {
            let brow = &b[j * ldb + k0..j * ldb + k1];
            let mut acc = 0.0f32;
            for (x, y) in arow.iter().zip(brow.iter()) {
                acc += x * y;
            }
            out[i * ldo + j] += acc;
        }
    }
}

/// `out[i, j] += Σ_{l ∈ [k0, k1)} a[l, i] · b[l, j]` — `a` transposed
/// (`[K, M]` row-major), the weight-gradient `Xᵀ · dY` primitive.
///
/// Rows of `out` (columns of `a`) are independent, so the engine can
/// partition `[0, m)` across threads; the reduction order per element is
/// `l` increasing regardless of the partition.
pub(crate) fn gemm_at_f32(
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    ldo: usize,
    i0: usize,
    i1: usize,
    n: usize,
    k0: usize,
    k1: usize,
) {
    for l in k0..k1 {
        let brow = &b[l * ldb..l * ldb + n];
        for i in i0..i1 {
            // No zero-skip: 0.0 * inf/NaN must still poison the gradient,
            // exactly as the pre-engine matmul_at did.
            let av = a[l * lda + i];
            let orow = &mut out[(i - i0) * ldo..(i - i0) * ldo + n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// Exact integer micro-kernel:
/// `out[i, j] += Σ_{l ∈ [k0, k1)} a[i, l] · b[l, j]` with `i8` operands
/// widened to `i32` products, `i32` accumulation.
pub(crate) fn gemm_i8(
    a: &[i8],
    lda: usize,
    b: &[i8],
    ldb: usize,
    out: &mut [i32],
    ldo: usize,
    m: usize,
    n: usize,
    k0: usize,
    k1: usize,
) {
    let mut kp = k0;
    while kp < k1 {
        let kq = usize::min(kp + KC, k1);
        let mut i = 0;
        while i + MR <= m {
            let mut j = 0;
            while j + NR <= n {
                let mut acc = [[0i32; NR]; MR];
                for l in kp..kq {
                    let brow = &b[l * ldb + j..l * ldb + j + NR];
                    for (r, accr) in acc.iter_mut().enumerate() {
                        let av = a[(i + r) * lda + l] as i32;
                        for (c, accv) in accr.iter_mut().enumerate() {
                            *accv += av * brow[c] as i32;
                        }
                    }
                }
                for (r, accr) in acc.iter().enumerate() {
                    let orow = &mut out[(i + r) * ldo + j..(i + r) * ldo + j + NR];
                    for (o, &v) in orow.iter_mut().zip(accr.iter()) {
                        *o += v;
                    }
                }
                j += NR;
            }
            if j < n {
                for r in 0..MR {
                    let mut acc = [0i32; NR];
                    for l in kp..kq {
                        let av = a[(i + r) * lda + l] as i32;
                        for (c, accv) in acc[..n - j].iter_mut().enumerate() {
                            *accv += av * b[l * ldb + j + c] as i32;
                        }
                    }
                    let orow = &mut out[(i + r) * ldo + j..(i + r) * ldo + n];
                    for (o, &v) in orow.iter_mut().zip(acc.iter()) {
                        *o += v;
                    }
                }
            }
            i += MR;
        }
        while i < m {
            let mut j = 0;
            while j < n {
                let jn = usize::min(j + NR, n);
                let mut acc = [0i32; NR];
                for l in kp..kq {
                    let av = a[i * lda + l] as i32;
                    for (c, accv) in acc[..jn - j].iter_mut().enumerate() {
                        *accv += av * b[l * ldb + j + c] as i32;
                    }
                }
                let orow = &mut out[i * ldo + j..i * ldo + jn];
                for (o, &v) in orow.iter_mut().zip(acc.iter()) {
                    *o += v;
                }
                j = jn;
            }
            i += 1;
        }
        kp = kq;
    }
}

/// Exact integer transposed-B micro-kernel:
/// `out[i, j] += Σ_{l ∈ [k0, k1)} a[i, l] · b[j, l]` — `b` stored `[N, K]`
/// row-major, the layout a weight-stationary PE array keeps its filter
/// rows in. Unit-stride dot products on both operands make this the
/// decode-path (`[B, d] × Wᵀ`) primitive.
pub(crate) fn gemm_bt_i8(
    a: &[i8],
    lda: usize,
    b: &[i8],
    ldb: usize,
    out: &mut [i32],
    ldo: usize,
    m: usize,
    n: usize,
    k0: usize,
    k1: usize,
) {
    for i in 0..m {
        let arow = &a[i * lda + k0..i * lda + k1];
        for j in 0..n {
            let brow = &b[j * ldb + k0..j * ldb + k1];
            let mut acc = 0i32;
            for (&x, &y) in arow.iter().zip(brow.iter()) {
                acc += x as i32 * y as i32;
            }
            out[i * ldo + j] += acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_f32(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                for l in 0..k {
                    acc += (a[i * k + l] as f64) * (b[l * n + j] as f64);
                }
                out[i * n + j] = acc as f32;
            }
        }
        out
    }

    #[test]
    fn blocked_matches_naive_at_awkward_sizes() {
        for (m, k, n) in [(1, 1, 1), (5, 7, 9), (13, 300, 17), (MR, KC + 3, NR)] {
            let a: Vec<f32> = (0..m * k)
                .map(|x| ((x % 23) as f32) * 0.125 - 1.0)
                .collect();
            let b: Vec<f32> = (0..k * n).map(|x| ((x % 19) as f32) * 0.25 - 2.0).collect();
            let mut out = vec![0.0f32; m * n];
            gemm_f32(&a, k, &b, n, &mut out, n, m, n, 0, k);
            let want = naive_f32(&a, &b, m, k, n);
            for (x, y) in out.iter().zip(want.iter()) {
                assert!((x - y).abs() <= 1e-3 * (1.0 + y.abs()), "{m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn k_ranges_partition_the_reduction_exactly_i8() {
        let (m, k, n) = (6, 40, 10);
        let a: Vec<i8> = (0..m * k).map(|x| ((x * 37 + 5) % 255) as i8).collect();
        let b: Vec<i8> = (0..k * n).map(|x| ((x * 53 + 7) % 251) as i8).collect();
        let mut full = vec![0i32; m * n];
        gemm_i8(&a, k, &b, n, &mut full, n, m, n, 0, k);
        let mut tiled = vec![0i32; m * n];
        for (k0, k1) in [(0, 13), (13, 14), (14, 40)] {
            gemm_i8(&a, k, &b, n, &mut tiled, n, m, n, k0, k1);
        }
        assert_eq!(full, tiled);
    }

    #[test]
    fn leading_dimensions_address_sub_blocks() {
        // Compute into the top-left 2×3 corner of a 4×5 out buffer, reading
        // a 2-column slice of b.
        let (m, k, n) = (2usize, 3usize, 3usize);
        let a: Vec<f32> = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // [2,3]
        let b: Vec<f32> = (0..k * 5).map(|x| x as f32).collect(); // [3,5], ldb=5
        let mut out = vec![0.0f32; 4 * 5];
        gemm_f32(&a, k, &b, 5, &mut out, 5, m, n, 0, k);
        for i in 0..m {
            for j in 0..n {
                let want: f32 = (0..k).map(|l| a[i * k + l] * b[l * 5 + j]).sum();
                assert_eq!(out[i * 5 + j], want);
            }
        }
        // Untouched region stays zero.
        assert!(out[5 * 3..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn bt_and_at_match_plain() {
        let (m, k, n) = (5, 11, 4);
        let a: Vec<f32> = (0..m * k).map(|x| (x % 13) as f32 - 6.0).collect();
        let b: Vec<f32> = (0..k * n).map(|x| (x % 7) as f32 - 3.0).collect();
        let mut plain = vec![0.0f32; m * n];
        gemm_f32(&a, k, &b, n, &mut plain, n, m, n, 0, k);

        // bᵀ stored [N, K].
        let mut bt = vec![0.0f32; n * k];
        for l in 0..k {
            for j in 0..n {
                bt[j * k + l] = b[l * n + j];
            }
        }
        let mut out = vec![0.0f32; m * n];
        gemm_bt_f32(&a, k, &bt, k, &mut out, n, m, n, 0, k);
        assert_eq!(out, plain);

        // aᵀ stored [K, M].
        let mut at = vec![0.0f32; k * m];
        for i in 0..m {
            for l in 0..k {
                at[l * m + i] = a[i * k + l];
            }
        }
        let mut out = vec![0.0f32; m * n];
        gemm_at_f32(&at, m, &b, n, &mut out, n, 0, m, n, 0, k);
        for (x, y) in out.iter().zip(plain.iter()) {
            assert!((x - y).abs() <= 1e-4 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn bt_i8_matches_plain_i8_and_partitions_k() {
        let (m, k, n) = (5, 23, 7);
        let a: Vec<i8> = (0..m * k).map(|x| ((x * 37 + 5) % 255) as i8).collect();
        let b: Vec<i8> = (0..k * n).map(|x| ((x * 53 + 7) % 251) as i8).collect();
        let mut plain = vec![0i32; m * n];
        gemm_i8(&a, k, &b, n, &mut plain, n, m, n, 0, k);

        // bᵀ stored [N, K].
        let mut bt = vec![0i8; n * k];
        for l in 0..k {
            for j in 0..n {
                bt[j * k + l] = b[l * n + j];
            }
        }
        let mut out = vec![0i32; m * n];
        gemm_bt_i8(&a, k, &bt, k, &mut out, n, m, n, 0, k);
        assert_eq!(out, plain);

        // K ranges partition the reduction exactly (integer addition).
        let mut tiled = vec![0i32; m * n];
        for (k0, k1) in [(0, 9), (9, 10), (10, 23)] {
            gemm_bt_i8(&a, k, &bt, k, &mut tiled, n, m, n, k0, k1);
        }
        assert_eq!(tiled, plain);
    }
}
