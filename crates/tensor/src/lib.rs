//! Dense tensor substrate for the APSQ reproduction.
//!
//! This crate provides the numeric foundation used by every other crate in
//! the workspace:
//!
//! - [`Tensor`] — a dense, row-major `f32` tensor with eager elementwise ops,
//!   reductions, and random initialization;
//! - [`matmul`] and friends — matrix multiplication kernels, including
//!   [`matmul_psum_tiles`], which splits the reduction axis into tiles and
//!   exposes the partial-sum (PSUM) stream that the APSQ algorithm quantizes;
//! - [`Int8Tensor`] / [`Int32Tensor`] and [`int8_matmul_psum_tiles`] — the
//!   exact integer path used by the bit-accurate hardware simulators;
//! - [`ExecEngine`] — the parallel tiled execution engine behind every
//!   GEMM/conv entry point: cache-blocked micro-kernels dispatched over a
//!   scoped thread pool, bit-identical results for any thread count, plus
//!   the buffer-reusing `*_into` variants and the `for_each_k_tile`
//!   PSUM-streaming API;
//! - [`KernelBackend`] — the explicit-width SIMD micro-kernel tiers
//!   (scalar reference, SSE2, AVX2) behind the engine, runtime-detected
//!   and bit-identical to each other by construction.
//!
//! # Example
//!
//! ```
//! use apsq_tensor::{matmul, matmul_psum_tiles, Tensor};
//!
//! let a = Tensor::ones([4, 8]);
//! let b = Tensor::ones([8, 3]);
//! let full = matmul(&a, &b);
//!
//! // The PSUM tiles along K sum back to the full product (paper eq. 8).
//! let tiles = matmul_psum_tiles(&a, &b, 2);
//! let mut acc = Tensor::zeros([4, 3]);
//! for t in &tiles {
//!     acc = &acc + t;
//! }
//! assert_eq!(acc, full);
//! ```

#![warn(missing_docs)]

mod activation;
mod conv;
mod exec;
mod init;
mod int_tensor;
mod kernels;
mod matmul;
mod reduce;
mod shape;
mod tensor;

pub use activation::{
    gelu, gelu_grad, gelu_scalar, relu, relu_grad, sigmoid, silu, silu_grad, softmax_rows,
    softmax_rows_grad,
};
pub use conv::{conv2d_i8_gemm, conv2d_i8_reference, im2col, im2col_i8};
pub use exec::ExecEngine;
pub use init::{kaiming_normal, rand_uniform, randn, xavier_uniform};
pub use int_tensor::{int8_matmul, int8_matmul_psum_tiles, Int32Tensor, Int8Tensor};
pub use kernels::{KernelBackend, BACKEND_ENV};
pub use matmul::{
    batched_matmul, matmul, matmul_at, matmul_at_into, matmul_bt, matmul_bt_into, matmul_into,
    matmul_psum_tiles, matmul_tiled_fold,
};
pub use reduce::{argmax_axis1, mean_axis1, sum_axis0, sum_axis1, var_axis1};
pub use shape::Shape;
pub use tensor::Tensor;
