//! Pointwise activations and row-wise softmax, with their derivatives.

use crate::tensor::Tensor;

/// Rectified linear unit, elementwise.
pub fn relu(x: &Tensor) -> Tensor {
    x.map(|v| v.max(0.0))
}

/// Derivative of [`relu`] with respect to its input, elementwise.
pub fn relu_grad(x: &Tensor) -> Tensor {
    x.map(|v| if v > 0.0 { 1.0 } else { 0.0 })
}

/// Gaussian error linear unit (tanh approximation), elementwise.
///
/// Uses the approximation from the GELU paper:
/// `0.5·x·(1 + tanh(√(2/π)·(x + 0.044715·x³)))`.
pub fn gelu(x: &Tensor) -> Tensor {
    x.map(gelu_scalar)
}

/// Scalar GELU (tanh approximation).
pub fn gelu_scalar(v: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * v * (1.0 + (C * (v + 0.044715 * v * v * v)).tanh())
}

/// Derivative of [`gelu`] with respect to its input, elementwise.
pub fn gelu_grad(x: &Tensor) -> Tensor {
    x.map(|v| {
        const C: f32 = 0.797_884_6;
        let inner = C * (v + 0.044715 * v * v * v);
        let t = inner.tanh();
        let sech2 = 1.0 - t * t;
        0.5 * (1.0 + t) + 0.5 * v * sech2 * C * (1.0 + 3.0 * 0.044715 * v * v)
    })
}

/// Logistic sigmoid, elementwise.
pub fn sigmoid(x: &Tensor) -> Tensor {
    x.map(|v| 1.0 / (1.0 + (-v).exp()))
}

/// SiLU / swish (`x · sigmoid(x)`), elementwise. Used by LLaMA-style FFNs.
pub fn silu(x: &Tensor) -> Tensor {
    x.map(|v| v / (1.0 + (-v).exp()))
}

/// Derivative of [`silu`] with respect to its input, elementwise.
pub fn silu_grad(x: &Tensor) -> Tensor {
    x.map(|v| {
        let s = 1.0 / (1.0 + (-v).exp());
        s * (1.0 + v * (1.0 - s))
    })
}

/// Numerically stable softmax over the last axis of a rank-2 tensor.
///
/// # Panics
///
/// Panics if `x` is not rank-2.
pub fn softmax_rows(x: &Tensor) -> Tensor {
    assert_eq!(x.rank(), 2, "softmax_rows requires a rank-2 tensor");
    let (m, n) = (x.dims()[0], x.dims()[1]);
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let row = &x.data()[i * n..(i + 1) * n];
        let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for (j, &v) in row.iter().enumerate() {
            let e = (v - mx).exp();
            out[i * n + j] = e;
            // lint: allow(float-reduction-outside-kernels) -- softmax row sum in fixed left-to-right order; this IS the blessed order
            sum += e;
        }
        for v in &mut out[i * n..(i + 1) * n] {
            *v /= sum;
        }
    }
    Tensor::from_vec(out, [m, n])
}

/// Backward pass of [`softmax_rows`]: given the softmax output `y` and the
/// upstream gradient `dy`, returns the gradient with respect to the input.
///
/// Uses `dx = y ⊙ (dy − (y·dy) 1ᵀ)` per row.
///
/// # Panics
///
/// Panics if shapes disagree or the tensors are not rank-2.
pub fn softmax_rows_grad(y: &Tensor, dy: &Tensor) -> Tensor {
    assert_eq!(y.rank(), 2, "softmax_rows_grad requires rank-2 tensors");
    assert_eq!(y.shape(), dy.shape(), "softmax_rows_grad: shape mismatch");
    let (m, n) = (y.dims()[0], y.dims()[1]);
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let yr = &y.data()[i * n..(i + 1) * n];
        let dr = &dy.data()[i * n..(i + 1) * n];
        let dot: f32 = yr.iter().zip(dr.iter()).map(|(a, b)| a * b).sum();
        for j in 0..n {
            out[i * n + j] = yr[j] * (dr[j] - dot);
        }
    }
    Tensor::from_vec(out, [m, n])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps() {
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], [3]);
        assert_eq!(relu(&x).data(), &[0.0, 0.0, 2.0]);
        assert_eq!(relu_grad(&x).data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1000.0, 1001.0, 1002.0], [2, 3]);
        let y = softmax_rows(&x);
        for i in 0..2 {
            let s: f32 = y.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        // Shift invariance: both rows have the same relative logits.
        for j in 0..3 {
            assert!((y.at(&[0, j]) - y.at(&[1, j])).abs() < 1e-5);
        }
    }

    #[test]
    fn gelu_matches_reference_points() {
        // Reference values from the tanh-approximation formula.
        assert!((gelu_scalar(0.0)).abs() < 1e-6);
        assert!((gelu_scalar(1.0) - 0.8412).abs() < 1e-3);
        assert!((gelu_scalar(-1.0) + 0.1588).abs() < 1e-3);
    }

    #[test]
    fn gelu_grad_finite_difference() {
        let xs = Tensor::from_vec(vec![-2.0, -0.5, 0.0, 0.7, 1.5], [5]);
        let g = gelu_grad(&xs);
        let eps = 1e-3;
        for (i, &x) in xs.data().iter().enumerate() {
            let fd = (gelu_scalar(x + eps) - gelu_scalar(x - eps)) / (2.0 * eps);
            assert!(
                (g.data()[i] - fd).abs() < 1e-2,
                "x={x}: analytic {} vs fd {fd}",
                g.data()[i]
            );
        }
    }

    #[test]
    fn silu_grad_finite_difference() {
        let xs = Tensor::from_vec(vec![-2.0, -0.5, 0.0, 0.7, 1.5], [5]);
        let g = silu_grad(&xs);
        let eps = 1e-3;
        let f = |v: f32| v / (1.0 + (-v).exp());
        for (i, &x) in xs.data().iter().enumerate() {
            let fd = (f(x + eps) - f(x - eps)) / (2.0 * eps);
            assert!((g.data()[i] - fd).abs() < 1e-2);
        }
    }

    #[test]
    fn softmax_grad_finite_difference() {
        let x = Tensor::from_vec(vec![0.3, -0.6, 1.2, 0.1], [1, 4]);
        let dy = Tensor::from_vec(vec![0.5, -1.0, 0.25, 2.0], [1, 4]);
        let y = softmax_rows(&x);
        let dx = softmax_rows_grad(&y, &dy);
        let eps = 1e-3;
        for j in 0..4 {
            let mut xp = x.clone();
            xp.set(&[0, j], x.at(&[0, j]) + eps);
            let mut xm = x.clone();
            xm.set(&[0, j], x.at(&[0, j]) - eps);
            let lp: f32 = softmax_rows(&xp)
                .data()
                .iter()
                .zip(dy.data())
                .map(|(a, b)| a * b)
                .sum();
            let lm: f32 = softmax_rows(&xm)
                .data()
                .iter()
                .zip(dy.data())
                .map(|(a, b)| a * b)
                .sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (dx.at(&[0, j]) - fd).abs() < 1e-2,
                "j={j}: {} vs {fd}",
                dx.at(&[0, j])
            );
        }
    }
}
