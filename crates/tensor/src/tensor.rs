//! The dense `f32` tensor type.

use crate::shape::Shape;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A dense, row-major, contiguously stored `f32` tensor.
///
/// This is the numeric workhorse of the APSQ reproduction: big enough to
/// express transformer forward/backward passes and the quantization-aware
/// training loop, small enough to audit. All operations are eager and
/// allocate their results.
///
/// # Examples
///
/// ```
/// use apsq_tensor::Tensor;
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
/// let b = Tensor::full([2, 2], 0.5);
/// let c = &a * &b;
/// assert_eq!(c.data(), &[0.5, 1.0, 1.5, 2.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor from raw data and a shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != shape.numel()`.
    pub fn from_vec<S: Into<Shape>>(data: Vec<f32>, shape: S) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.numel(),
            "data length {} does not match shape {} ({} elements)",
            data.len(),
            shape,
            shape.numel()
        );
        Tensor { data, shape }
    }

    /// Creates a tensor filled with zeros.
    pub fn zeros<S: Into<Shape>>(shape: S) -> Self {
        let shape = shape.into();
        Tensor {
            data: vec![0.0; shape.numel()],
            shape,
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones<S: Into<Shape>>(shape: S) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full<S: Into<Shape>>(shape: S, value: f32) -> Self {
        let shape = shape.into();
        Tensor {
            data: vec![value; shape.numel()],
            shape,
        }
    }

    /// Creates a rank-0 tensor holding one value.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            data: vec![value],
            shape: Shape::new(vec![]),
        }
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The extents of the tensor as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// The number of elements.
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// The number of axes.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Borrow of the underlying row-major storage.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable borrow of the underlying row-major storage.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Value at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds or the wrong rank.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Sets the value at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds or the wrong rank.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape<S: Into<Shape>>(&self, shape: S) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            self.numel(),
            shape.numel(),
            "cannot reshape {} ({} elements) into {} ({} elements)",
            self.shape,
            self.numel(),
            shape,
            shape.numel()
        );
        Tensor {
            data: self.data.clone(),
            shape,
        }
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped (or row-broadcast) tensors elementwise.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are not elementwise compatible (equal, or `other`
    /// is a vector matching the last axis of `self`).
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert!(
            self.shape.elementwise_compatible(&other.shape),
            "elementwise op on incompatible shapes {} and {}",
            self.shape,
            other.shape
        );
        if self.shape == other.shape {
            let data = self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect();
            Tensor {
                data,
                shape: self.shape.clone(),
            }
        } else {
            // Row-broadcast: `other` is a vector over the last axis.
            let n = other.numel();
            let data = self
                .data
                .iter()
                .enumerate()
                .map(|(i, &a)| f(a, other.data[i % n]))
                .collect();
            Tensor {
                data,
                shape: self.shape.clone(),
            }
        }
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "transpose requires a rank-2 tensor");
        let (m, n) = (self.dims()[0], self.dims()[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(out, [n, m])
    }

    /// Extracts row `r` of a rank-2 tensor as a rank-1 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2 or `r` is out of bounds.
    pub fn row(&self, r: usize) -> Tensor {
        assert_eq!(self.rank(), 2, "row() requires a rank-2 tensor");
        let n = self.dims()[1];
        assert!(r < self.dims()[0], "row {} out of bounds", r);
        Tensor::from_vec(self.data[r * n..(r + 1) * n].to_vec(), [n])
    }

    /// Concatenates rank-2 tensors along axis 0.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty, any part is not rank-2, or column counts
    /// differ.
    pub fn concat_rows(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_rows requires at least one part");
        let n = parts[0].dims()[1];
        let mut data = Vec::new();
        let mut rows = 0;
        for p in parts {
            assert_eq!(p.rank(), 2, "concat_rows requires rank-2 tensors");
            assert_eq!(p.dims()[1], n, "concat_rows requires equal column counts");
            data.extend_from_slice(p.data());
            rows += p.dims()[0];
        }
        Tensor::from_vec(data, [rows, n])
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (−∞ for empty tensors).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (+∞ for empty tensors).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Mean of squared elements.
    pub fn mean_sq(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            // lint: allow(float-reduction-outside-kernels) -- slice-order sum over the tensor's own storage; the storage order is the blessed order
            self.data.iter().map(|&x| x * x).sum::<f32>() / self.data.len() as f32
        }
    }

    /// Index of the maximum element in a rank-1 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn argmax(&self) -> usize {
        assert!(!self.data.is_empty(), "argmax of empty tensor");
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Frobenius (L2) norm.
    pub fn norm(&self) -> f32 {
        // lint: allow(float-reduction-outside-kernels) -- slice-order sum over the tensor's own storage; the storage order is the blessed order
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.numel() <= 16 {
            write!(f, "Tensor({}, {:?})", self.shape, self.data)
        } else {
            write!(
                f,
                "Tensor({}, [{:.4}, {:.4}, .., {:.4}])",
                self.shape,
                self.data[0],
                self.data[1],
                self.data[self.data.len() - 1]
            )
        }
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait<&Tensor> for &Tensor {
            type Output = Tensor;
            fn $method(self, rhs: &Tensor) -> Tensor {
                self.zip(rhs, |a, b| a $op b)
            }
        }
        impl $trait<f32> for &Tensor {
            type Output = Tensor;
            fn $method(self, rhs: f32) -> Tensor {
                self.map(|a| a $op rhs)
            }
        }
    };
}

impl_binop!(Add, add, +);
impl_binop!(Sub, sub, -);
impl_binop!(Mul, mul, *);
impl_binop!(Div, div, /);

impl Neg for &Tensor {
    type Output = Tensor;
    fn neg(self) -> Tensor {
        self.map(|a| -a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        assert_eq!(t.at(&[0, 0]), 1.0);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert_eq!(t.numel(), 6);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn bad_construction() {
        Tensor::from_vec(vec![1.0], [2, 3]);
    }

    #[test]
    fn arithmetic() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let b = Tensor::from_vec(vec![3.0, 5.0], [2]);
        assert_eq!((&a + &b).data(), &[4.0, 7.0]);
        assert_eq!((&a - &b).data(), &[-2.0, -3.0]);
        assert_eq!((&a * &b).data(), &[3.0, 10.0]);
        assert_eq!((&b / 2.0).data(), &[1.5, 2.5]);
        assert_eq!((-&a).data(), &[-1.0, -2.0]);
    }

    #[test]
    fn row_broadcast_add() {
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let v = Tensor::from_vec(vec![10.0, 20.0], [2]);
        let r = &m + &v;
        assert_eq!(r.data(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), [3, 4]);
        let tt = t.transpose().transpose();
        assert_eq!(t, tt);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0], [3]);
        assert_eq!(t.sum(), 2.0);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -2.0);
        assert_eq!(t.argmax(), 2);
        assert!((t.mean() - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn concat_rows() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [1, 2]);
        let b = Tensor::from_vec(vec![3.0, 4.0, 5.0, 6.0], [2, 2]);
        let c = Tensor::concat_rows(&[&a, &b]);
        assert_eq!(c.dims(), &[3, 2]);
        assert_eq!(c.data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let r = t.reshape([4]);
        assert_eq!(r.data(), t.data());
    }
}
