//! The parallel tiled execution engine behind every GEMM, conv, and PSUM
//! stream in the workspace.
//!
//! [`ExecEngine`] owns one knob — a worker count — and dispatches the
//! cache-blocked micro-kernels in [`crate::kernels`] over a scoped thread
//! pool ([`std::thread::scope`]; no extra dependencies, no global state).
//! Consumers hold an engine as *context* and route every hot kernel through
//! it: QAT forward/backward in `apsq-nn`, the workload runners in
//! `apsq-models`, the PE-array simulator in `apsq-accel`, and the
//! paper-figure binaries in `apsq-bench`.
//!
//! # Determinism
//!
//! Work is partitioned over **rows of the output**, aligned to the register
//! tile height, and each output element is reduced by exactly one worker in
//! a fixed K order. Results are therefore **bit-identical for every thread
//! count** — integer paths trivially (integer addition is exact), float
//! paths because the reduction order per element depends only on the
//! kernel, never on the partition. The same contract extends across
//! **kernel backends**: every [`crate::KernelBackend`] (scalar reference,
//! SSE2, AVX2) implements the identical per-element reduction order, so an
//! engine produces the same bits whichever backend it dispatches (see the
//! `kernels` module docs for the lane-reduction-order rule). The
//! golden-model tests that pin the integer APSQ path keep passing
//! unchanged no matter how the engine is configured.
//!
//! # Thread-scaling example
//!
//! ```
//! use apsq_tensor::{ExecEngine, Tensor};
//!
//! let a = Tensor::ones([96, 128]);
//! let b = Tensor::ones([128, 64]);
//!
//! let serial = ExecEngine::serial();
//! let quad = ExecEngine::with_threads(4);
//! // Same bits out regardless of parallelism:
//! assert_eq!(serial.matmul(&a, &b), quad.matmul(&a, &b));
//! ```
//!
//! # Streaming K tiles
//!
//! [`ExecEngine::for_each_k_tile`] feeds partial-sum tiles to a fold
//! without materializing a `Vec<Tensor>` — the APSQ integration point:
//!
//! ```
//! use apsq_tensor::{ExecEngine, Tensor};
//!
//! let eng = ExecEngine::serial();
//! let a = Tensor::ones([4, 32]);
//! let b = Tensor::ones([32, 8]);
//! let mut running = Tensor::zeros([4, 8]);
//! eng.for_each_k_tile(&a, &b, 8, |_step, tile| {
//!     running = &running + tile; // a requantizing fold would go here
//! });
//! assert_eq!(running, eng.matmul(&a, &b));
//! ```

use crate::int_tensor::{Int32Tensor, Int8Tensor};
use crate::kernels;
use crate::tensor::Tensor;

/// Below this many multiply-accumulates a dispatch runs inline on the
/// calling thread. Spawning scoped workers costs tens of microseconds per
/// call, which only amortizes once a GEMM takes a few hundred — about 2M
/// MACs on a commodity core.
const PARALLEL_THRESHOLD_MACS: usize = 1 << 21;

/// A parallel tiled execution engine: a worker count plus the dispatch
/// logic that partitions output rows over a scoped thread pool.
///
/// The engine is `Copy` and trivially cheap to pass by reference; hold one
/// per training/inference context and thread it through call chains instead
/// of configuring per-call globals. See the module docs above for the
/// determinism contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecEngine {
    threads: usize,
    spawn_threshold: usize,
    backend: kernels::KernelBackend,
}

impl Default for ExecEngine {
    /// An engine sized to the machine ([`ExecEngine::auto`]).
    fn default() -> Self {
        ExecEngine::auto()
    }
}

impl ExecEngine {
    /// A single-threaded engine: every kernel runs on the calling thread.
    pub fn serial() -> Self {
        Self::with_threads(1)
    }

    /// An engine with exactly `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads > 0, "ExecEngine needs at least one thread");
        ExecEngine {
            threads,
            spawn_threshold: PARALLEL_THRESHOLD_MACS,
            backend: kernels::KernelBackend::detect(),
        }
    }

    /// An engine sized to [`std::thread::available_parallelism`] (falls
    /// back to 1 when the parallelism cannot be determined).
    pub fn auto() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::with_threads(threads)
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Overrides the inline-dispatch threshold: calls whose estimated
    /// multiply-accumulate count is below it skip the thread pool. The
    /// default (~2M MACs) amortizes the per-call cost of spawning scoped
    /// workers; set `0` to force the parallel path on every dispatch
    /// (useful for tests that must exercise the partitioning on small
    /// inputs).
    pub fn with_spawn_threshold(mut self, macs: usize) -> Self {
        self.spawn_threshold = macs;
        self
    }

    /// Overrides the micro-kernel backend. Every backend produces
    /// bit-identical results (the kernels pin the per-element reduction
    /// order); forcing one is for perf attribution and for tests that must
    /// exercise the scalar fallback on SIMD hosts. Process-wide forcing is
    /// also available via the `APSQ_KERNEL_BACKEND` env var
    /// ([`crate::kernels::BACKEND_ENV`]).
    ///
    /// # Panics
    ///
    /// Panics if `backend` is not supported on this CPU.
    pub fn with_backend(mut self, backend: kernels::KernelBackend) -> Self {
        assert!(
            backend.is_supported(),
            "kernel backend {backend} is not supported on this CPU"
        );
        self.backend = backend;
        self
    }

    /// The micro-kernel backend this engine dispatches
    /// ([`crate::KernelBackend::detect`] unless overridden).
    pub fn backend(&self) -> kernels::KernelBackend {
        self.backend
    }

    /// Partitions `out` (rows of `ld` elements, `m` rows total) into
    /// register-tile-aligned contiguous row chunks and runs `body` on each,
    /// in parallel when the estimated `macs` justify spawning.
    ///
    /// `body(r0, r1, chunk)` must write only into `chunk`, which aliases
    /// `out[r0*ld .. r1*ld]`.
    fn partition_rows<T: Send>(
        &self,
        out: &mut [T],
        ld: usize,
        m: usize,
        macs: usize,
        body: &(impl Fn(usize, usize, &mut [T]) + Sync),
    ) {
        let max_chunks = m.div_ceil(kernels::MR).max(1);
        let chunks = self.threads.min(max_chunks);
        if chunks <= 1 || macs < self.spawn_threshold {
            body(0, m, &mut out[..m * ld]);
            return;
        }
        // Rows per chunk, rounded up to the register-tile height so the
        // blocking phase (and hence the float reduction order) matches the
        // serial schedule exactly.
        let rows = m.div_ceil(chunks).div_ceil(kernels::MR) * kernels::MR;
        std::thread::scope(|s| {
            let mut rest = &mut out[..m * ld];
            let mut r0 = 0usize;
            while r0 < m {
                let r1 = usize::min(r0 + rows, m);
                let (head, tail) = rest.split_at_mut((r1 - r0) * ld);
                rest = tail;
                s.spawn(move || body(r0, r1, head));
                r0 = r1;
            }
        });
    }

    // ---------------------------------------------------------------- f32

    /// `a` (`[M, K]`) × `b` (`[K, N]`) → `[M, N]`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank-2 or inner dims disagree.
    pub fn matmul(&self, a: &Tensor, b: &Tensor) -> Tensor {
        let (m, _, n) = dims_mm(a, b);
        let mut out = Tensor::zeros([m, n]);
        self.matmul_into(a, b, &mut out);
        out
    }

    /// [`ExecEngine::matmul`] into a caller-owned output buffer
    /// (overwritten), avoiding the allocation.
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatches, including `out`.
    pub fn matmul_into(&self, a: &Tensor, b: &Tensor, out: &mut Tensor) {
        let (m, k, n) = dims_mm(a, b);
        assert_eq!(out.dims(), &[m, n], "matmul_into: out must be [{m}, {n}]");
        out.data_mut().fill(0.0);
        self.gemm_f32_rows(a.data(), b.data(), out.data_mut(), m, k, n, 0, k);
    }

    /// `a` (`[M, K]`) × `bᵀ` (`b` stored `[N, K]`) → `[M, N]`, the
    /// backward-pass `dX = dY · Wᵀ` primitive.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank-2 or the K dims disagree.
    pub fn matmul_bt(&self, a: &Tensor, b: &Tensor) -> Tensor {
        let (m, _, n) = dims_bt(a, b);
        let mut out = Tensor::zeros([m, n]);
        self.matmul_bt_into(a, b, &mut out);
        out
    }

    /// [`ExecEngine::matmul_bt`] into a caller-owned buffer (overwritten).
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatches, including `out`.
    pub fn matmul_bt_into(&self, a: &Tensor, b: &Tensor, out: &mut Tensor) {
        let (m, k, n) = dims_bt(a, b);
        assert_eq!(
            out.dims(),
            &[m, n],
            "matmul_bt_into: out must be [{m}, {n}]"
        );
        out.data_mut().fill(0.0);
        let (ad, bd) = (a.data(), b.data());
        self.partition_rows(out.data_mut(), n, m, m * n * k, &|r0, r1, chunk| {
            kernels::gemm_bt_f32(
                self.backend,
                &ad[r0 * k..],
                k,
                bd,
                k,
                chunk,
                n,
                r1 - r0,
                n,
                0,
                k,
            );
        });
    }

    /// `aᵀ` (`a` stored `[K, M]`) × `b` (`[K, N]`) → `[M, N]`, the
    /// weight-gradient `dW = Xᵀ · dY` primitive.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank-2 or the K dims disagree.
    pub fn matmul_at(&self, a: &Tensor, b: &Tensor) -> Tensor {
        let (m, _, n) = dims_at(a, b);
        let mut out = Tensor::zeros([m, n]);
        self.matmul_at_acc(a, b, &mut out);
        out
    }

    /// [`ExecEngine::matmul_at`] into a caller-owned buffer (overwritten).
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatches, including `out`.
    pub fn matmul_at_into(&self, a: &Tensor, b: &Tensor, out: &mut Tensor) {
        let (m, _, n) = dims_at(a, b);
        assert_eq!(
            out.dims(),
            &[m, n],
            "matmul_at_into: out must be [{m}, {n}]"
        );
        out.data_mut().fill(0.0);
        self.matmul_at_acc(a, b, out);
    }

    /// **Accumulates** `aᵀ · b` into `acc` (`acc += aᵀ·b`) — the gradient
    /// hot path: backward passes add weight gradients straight into the
    /// parameter's gradient buffer instead of allocating a fresh tensor
    /// per step.
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatches, including `acc`.
    pub fn matmul_at_acc(&self, a: &Tensor, b: &Tensor, acc: &mut Tensor) {
        let (m, k, n) = dims_at(a, b);
        assert_eq!(acc.dims(), &[m, n], "matmul_at_acc: acc must be [{m}, {n}]");
        let (ad, bd) = (a.data(), b.data());
        self.partition_rows(acc.data_mut(), n, m, m * n * k, &|r0, r1, chunk| {
            kernels::gemm_at_f32(self.backend, ad, m, bd, n, chunk, n, r0, r1, n, 0, k);
        });
    }

    /// Batched matmul: `[B, M, K] × [B, K, N] → [B, M, N]`.
    ///
    /// # Panics
    ///
    /// Panics if operands are not rank-3 or batch/inner dims disagree.
    pub fn batched_matmul(&self, a: &Tensor, b: &Tensor) -> Tensor {
        assert_eq!(a.rank(), 3, "batched_matmul: `a` must be rank-3");
        assert_eq!(b.rank(), 3, "batched_matmul: `b` must be rank-3");
        let (ba, m, k) = (a.dims()[0], a.dims()[1], a.dims()[2]);
        let (bb, kb, n) = (b.dims()[0], b.dims()[1], b.dims()[2]);
        assert_eq!(ba, bb, "batched_matmul: batch sizes {ba} vs {bb} disagree");
        assert_eq!(k, kb, "batched_matmul: inner dims {k} vs {kb} disagree");
        let mut out = vec![0.0f32; ba * m * n];
        for batch in 0..ba {
            self.gemm_f32_rows(
                &a.data()[batch * m * k..(batch + 1) * m * k],
                &b.data()[batch * k * n..(batch + 1) * k * n],
                &mut out[batch * m * n..(batch + 1) * m * n],
                m,
                k,
                n,
                0,
                k,
            );
        }
        Tensor::from_vec(out, [ba, m, n])
    }

    /// Streams the K-tiled partial-sum (PSUM) tiles of `a · b` to `f`
    /// without materializing them: one reusable `[M, N]` buffer holds the
    /// current tile, computed in parallel, and `f(step, tile)` is called
    /// once per tile in accumulation order. `Σ_step tile_step = a·b`
    /// exactly (paper eq 8).
    ///
    /// # Panics
    ///
    /// Panics if operands are not rank-2, inner dims disagree, or
    /// `k_tile == 0`.
    pub fn for_each_k_tile(
        &self,
        a: &Tensor,
        b: &Tensor,
        k_tile: usize,
        mut f: impl FnMut(usize, &Tensor),
    ) {
        assert!(k_tile > 0, "k_tile must be positive");
        let (m, k, n) = dims_mm(a, b);
        let np = k.div_ceil(k_tile);
        let mut tile = Tensor::zeros([m, n]);
        for t in 0..np {
            let k0 = t * k_tile;
            let k1 = usize::min(k0 + k_tile, k);
            tile.data_mut().fill(0.0);
            self.gemm_f32_rows(a.data(), b.data(), tile.data_mut(), m, k, n, k0, k1);
            f(t, &tile);
        }
    }

    /// Computes `a · b` by folding the K-tiled PSUM stream through `fold`
    /// — without collecting the tiles. `fold(step, running, tile)` receives
    /// the running accumulation (initially zero); the default fold
    /// `running += tile` reproduces plain matmul, a requantizing fold
    /// implements APSQ in the fake-quant domain.
    ///
    /// # Panics
    ///
    /// Panics if operands are not rank-2, inner dims disagree, or
    /// `k_tile == 0`.
    pub fn matmul_tiled_fold(
        &self,
        a: &Tensor,
        b: &Tensor,
        k_tile: usize,
        mut fold: impl FnMut(usize, &mut Tensor, &Tensor),
    ) -> Tensor {
        let (m, _, n) = dims_mm(a, b);
        let mut running = Tensor::zeros([m, n]);
        self.for_each_k_tile(a, b, k_tile, |step, tile| fold(step, &mut running, tile));
        running
    }

    /// Collects the K-tiled PSUM stream into a `Vec` (each tile `[M, N]`).
    /// Prefer [`ExecEngine::for_each_k_tile`] unless a later pass genuinely
    /// needs every tile at once (e.g. scale calibration).
    ///
    /// # Panics
    ///
    /// Panics if operands are not rank-2, inner dims disagree, or
    /// `k_tile == 0`.
    pub fn matmul_psum_tiles(&self, a: &Tensor, b: &Tensor, k_tile: usize) -> Vec<Tensor> {
        let mut tiles = Vec::new();
        self.for_each_k_tile(a, b, k_tile, |_, tile| tiles.push(tile.clone()));
        tiles
    }

    #[allow(clippy::too_many_arguments)]
    fn gemm_f32_rows(
        &self,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        k0: usize,
        k1: usize,
    ) {
        self.partition_rows(out, n, m, m * n * (k1 - k0), &|r0, r1, chunk| {
            kernels::gemm_f32(
                self.backend,
                &a[r0 * k..],
                k,
                b,
                n,
                chunk,
                n,
                r1 - r0,
                n,
                k0,
                k1,
            );
        });
    }

    // ------------------------------------------------------------- integer

    /// Exact integer matmul: `[M, K]` i8 × `[K, N]` i8 → `[M, N]` i32.
    /// Bit-identical to the serial reference for every thread count.
    ///
    /// # Panics
    ///
    /// Panics if operands are not rank-2 or inner dims disagree.
    pub fn int8_matmul(&self, a: &Int8Tensor, b: &Int8Tensor) -> Int32Tensor {
        let (m, _, n) = dims_i8(a, b);
        let mut out = Int32Tensor::zeros([m, n]);
        self.int8_matmul_into(a, b, &mut out);
        out
    }

    /// [`ExecEngine::int8_matmul`] into a caller-owned buffer
    /// (overwritten).
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatches, including `out`.
    pub fn int8_matmul_into(&self, a: &Int8Tensor, b: &Int8Tensor, out: &mut Int32Tensor) {
        let (m, k, n) = dims_i8(a, b);
        assert_eq!(
            out.dims(),
            &[m, n],
            "int8_matmul_into: out must be [{m}, {n}]"
        );
        out.data_mut().fill(0);
        self.gemm_i8_rows(a.data(), b.data(), out.data_mut(), m, k, n, 0, k);
    }

    /// **Accumulates** `a · b` into `acc` (`acc += a·b`) — the integer
    /// twin of [`ExecEngine::matmul_at_acc`]: residual/requantizing
    /// epilogues add fresh partial products straight into a caller-owned
    /// i32 accumulator instead of allocating per step. Addition is exact,
    /// so results stay bit-identical for every thread count.
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatches, including `acc`.
    pub fn int8_matmul_acc(&self, a: &Int8Tensor, b: &Int8Tensor, acc: &mut Int32Tensor) {
        let (m, k, n) = dims_i8(a, b);
        assert_eq!(
            acc.dims(),
            &[m, n],
            "int8_matmul_acc: acc must be [{m}, {n}]"
        );
        self.gemm_i8_rows(a.data(), b.data(), acc.data_mut(), m, k, n, 0, k);
    }

    /// Exact integer transposed-B matmul: `a` (`[M, K]` i8) × `bᵀ` (`b`
    /// stored `[N, K]` i8) → `[M, N]` i32 — the weight layout a
    /// weight-stationary datapath keeps resident, and the decode-path
    /// `[B, d] × Wᵀ` primitive.
    ///
    /// # Panics
    ///
    /// Panics if operands are not rank-2 or the K dims disagree.
    pub fn int8_matmul_bt(&self, a: &Int8Tensor, b: &Int8Tensor) -> Int32Tensor {
        let (m, _, n) = dims_bt_i8(a, b);
        let mut out = Int32Tensor::zeros([m, n]);
        self.int8_matmul_bt_into(a, b, &mut out);
        out
    }

    /// [`ExecEngine::int8_matmul_bt`] into a caller-owned buffer
    /// (overwritten).
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatches, including `out`.
    pub fn int8_matmul_bt_into(&self, a: &Int8Tensor, b: &Int8Tensor, out: &mut Int32Tensor) {
        let (m, k, n) = dims_bt_i8(a, b);
        assert_eq!(
            out.dims(),
            &[m, n],
            "int8_matmul_bt_into: out must be [{m}, {n}]"
        );
        out.data_mut().fill(0);
        let (ad, bd) = (a.data(), b.data());
        self.partition_rows(out.data_mut(), n, m, m * n * k, &|r0, r1, chunk| {
            kernels::gemm_bt_i8(
                self.backend,
                &ad[r0 * k..],
                k,
                bd,
                k,
                chunk,
                n,
                r1 - r0,
                n,
                0,
                k,
            );
        });
    }

    /// Batched exact integer matmul: `[B, M, K]` i8 × `[B, K, N]` i8 →
    /// `[B, M, N]` i32.
    ///
    /// # Panics
    ///
    /// Panics if operands are not rank-3 or batch/inner dims disagree.
    pub fn int8_batched_matmul(&self, a: &Int8Tensor, b: &Int8Tensor) -> Int32Tensor {
        assert_eq!(
            a.shape().rank(),
            3,
            "int8_batched_matmul: `a` must be rank-3"
        );
        assert_eq!(
            b.shape().rank(),
            3,
            "int8_batched_matmul: `b` must be rank-3"
        );
        let (ba, m, k) = (a.dims()[0], a.dims()[1], a.dims()[2]);
        let (bb, kb, n) = (b.dims()[0], b.dims()[1], b.dims()[2]);
        assert_eq!(
            ba, bb,
            "int8_batched_matmul: batch sizes {ba} vs {bb} disagree"
        );
        assert_eq!(
            k, kb,
            "int8_batched_matmul: inner dims {k} vs {kb} disagree"
        );
        let mut out = Int32Tensor::zeros([ba, m, n]);
        for batch in 0..ba {
            self.gemm_i8_rows(
                &a.data()[batch * m * k..(batch + 1) * m * k],
                &b.data()[batch * k * n..(batch + 1) * k * n],
                &mut out.data_mut()[batch * m * n..(batch + 1) * m * n],
                m,
                k,
                n,
                0,
                k,
            );
        }
        out
    }

    /// Batched exact integer transposed-B matmul: `[B, M, K]` i8 × `bᵀ`
    /// per batch (`b` stored `[B, N, K]` i8) → `[B, M, N]` i32 — the
    /// decode-attention `Q·Kᵀ` primitive, where the batch axis is the head
    /// and the cached key rows already sit in the `[N, K]` row-major
    /// layout the KV cache appends them in.
    ///
    /// # Panics
    ///
    /// Panics if operands are not rank-3 or batch/K dims disagree.
    pub fn int8_batched_matmul_bt(&self, a: &Int8Tensor, b: &Int8Tensor) -> Int32Tensor {
        let (ba, m, k, n) = dims_batched_bt_i8(a, b);
        let mut out = Int32Tensor::zeros([ba, m, n]);
        for batch in 0..ba {
            let ad = &a.data()[batch * m * k..(batch + 1) * m * k];
            let bd = &b.data()[batch * n * k..(batch + 1) * n * k];
            let od = &mut out.data_mut()[batch * m * n..(batch + 1) * m * n];
            self.partition_rows(od, n, m, m * n * k, &|r0, r1, chunk| {
                kernels::gemm_bt_i8(
                    self.backend,
                    &ad[r0 * k..],
                    k,
                    bd,
                    k,
                    chunk,
                    n,
                    r1 - r0,
                    n,
                    0,
                    k,
                );
            });
        }
        out
    }

    /// [`ExecEngine::int8_batched_matmul_bt`] dequantized on the way out
    /// with one scale per (batch, output column): `out[b, i, j] =
    /// Σ_k a[b,i,k]·b[b,j,k] · a_scale · row_scales[b·N + j]` — the
    /// per-row-scaled decode `Q·Kᵀ`, where every cached key row carries
    /// its own (per-token, per-head) power-of-two scale.
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatches or if `row_scales.len() != B·N`.
    pub fn int8_rowscaled_batched_matmul_bt(
        &self,
        a: &Int8Tensor,
        b: &Int8Tensor,
        a_scale: f32,
        row_scales: &[f32],
    ) -> Tensor {
        let (ba, m, _, n) = dims_batched_bt_i8(a, b);
        assert_eq!(
            row_scales.len(),
            ba * n,
            "row_scales must provide one scale per (batch, row): {} != {}",
            row_scales.len(),
            ba * n
        );
        let acc = self.int8_batched_matmul_bt(a, b);
        let mut out = vec![0.0f32; ba * m * n];
        for batch in 0..ba {
            for i in 0..m {
                let base = batch * m * n + i * n;
                for j in 0..n {
                    out[base + j] =
                        acc.data()[base + j] as f32 * a_scale * row_scales[batch * n + j];
                }
            }
        }
        Tensor::from_vec(out, [ba, m, n])
    }

    /// Streams the exact i32 PSUM tiles of the batched transposed-B matmul
    /// along K to `f`: one reusable `[B, M, N]` buffer, tiles in fixed
    /// accumulation order — the batched twin of
    /// [`ExecEngine::int8_bt_for_each_k_tile`], so a per-batch APSQ fold
    /// can sit inside the decode score GEMM's K loop.
    ///
    /// # Panics
    ///
    /// Panics if operands are not rank-3, batch/K dims disagree, or
    /// `k_tile == 0`.
    pub fn int8_batched_bt_for_each_k_tile(
        &self,
        a: &Int8Tensor,
        b: &Int8Tensor,
        k_tile: usize,
        mut f: impl FnMut(usize, &Int32Tensor),
    ) {
        assert!(k_tile > 0, "k_tile must be positive");
        let (ba, m, k, n) = dims_batched_bt_i8(a, b);
        let np = k.div_ceil(k_tile);
        let mut tile = Int32Tensor::zeros([ba, m, n]);
        for t in 0..np {
            let k0 = t * k_tile;
            let k1 = usize::min(k0 + k_tile, k);
            tile.data_mut().fill(0);
            for batch in 0..ba {
                let ad = &a.data()[batch * m * k..(batch + 1) * m * k];
                let bd = &b.data()[batch * n * k..(batch + 1) * n * k];
                let od = &mut tile.data_mut()[batch * m * n..(batch + 1) * m * n];
                self.partition_rows(od, n, m, m * n * (k1 - k0), &|r0, r1, chunk| {
                    kernels::gemm_bt_i8(
                        self.backend,
                        &ad[r0 * k..],
                        k,
                        bd,
                        k,
                        chunk,
                        n,
                        r1 - r0,
                        n,
                        k0,
                        k1,
                    );
                });
            }
            f(t, &tile);
        }
    }

    /// Streams the exact i32 PSUM tiles of the batched `[B, M, K] ×
    /// [B, K, N]` matmul along K to `f`: one reusable `[B, M, N]` buffer,
    /// fixed accumulation order — the batched twin of
    /// [`ExecEngine::int8_for_each_k_tile`]. In decode attention this is
    /// the `P·V` GEMM whose K axis is the **context length**, so grouped
    /// APSQ folds over the sequence dimension exactly where the KV-cache
    /// PSUM traffic lives.
    ///
    /// # Panics
    ///
    /// Panics if operands are not rank-3, batch/inner dims disagree, or
    /// `k_tile == 0`.
    pub fn int8_batched_for_each_k_tile(
        &self,
        a: &Int8Tensor,
        b: &Int8Tensor,
        k_tile: usize,
        mut f: impl FnMut(usize, &Int32Tensor),
    ) {
        assert!(k_tile > 0, "k_tile must be positive");
        assert_eq!(
            a.shape().rank(),
            3,
            "int8_batched_for_each_k_tile: `a` must be rank-3"
        );
        assert_eq!(
            b.shape().rank(),
            3,
            "int8_batched_for_each_k_tile: `b` must be rank-3"
        );
        let (ba, m, k) = (a.dims()[0], a.dims()[1], a.dims()[2]);
        let (bb, kb, n) = (b.dims()[0], b.dims()[1], b.dims()[2]);
        assert_eq!(ba, bb, "batch sizes {ba} vs {bb} disagree");
        assert_eq!(k, kb, "inner dimensions {k} vs {kb} disagree");
        let np = k.div_ceil(k_tile);
        let mut tile = Int32Tensor::zeros([ba, m, n]);
        for t in 0..np {
            let k0 = t * k_tile;
            let k1 = usize::min(k0 + k_tile, k);
            tile.data_mut().fill(0);
            for batch in 0..ba {
                self.partition_rows(
                    &mut tile.data_mut()[batch * m * n..(batch + 1) * m * n],
                    n,
                    m,
                    m * n * (k1 - k0),
                    &|r0, r1, chunk| {
                        kernels::gemm_i8(
                            self.backend,
                            &a.data()[batch * m * k + r0 * k..],
                            k,
                            &b.data()[batch * k * n..(batch + 1) * k * n],
                            n,
                            chunk,
                            n,
                            r1 - r0,
                            n,
                            k0,
                            k1,
                        );
                    },
                );
            }
            f(t, &tile);
        }
    }

    /// Streams the exact i32 PSUM tiles of `a · bᵀ` (`b` stored `[N, K]`)
    /// along K to `f` — [`ExecEngine::int8_for_each_k_tile`] for the
    /// transposed weight layout, so a requantizing APSQ fold can sit
    /// directly inside the decode GEMM's K loop.
    ///
    /// # Panics
    ///
    /// Panics if operands are not rank-2, K dims disagree, or
    /// `k_tile == 0`.
    pub fn int8_bt_for_each_k_tile(
        &self,
        a: &Int8Tensor,
        b: &Int8Tensor,
        k_tile: usize,
        mut f: impl FnMut(usize, &Int32Tensor),
    ) {
        assert!(k_tile > 0, "k_tile must be positive");
        let (m, k, n) = dims_bt_i8(a, b);
        let np = k.div_ceil(k_tile);
        let mut tile = Int32Tensor::zeros([m, n]);
        let (ad, bd) = (a.data(), b.data());
        for t in 0..np {
            let k0 = t * k_tile;
            let k1 = usize::min(k0 + k_tile, k);
            tile.data_mut().fill(0);
            self.partition_rows(
                tile.data_mut(),
                n,
                m,
                m * n * (k1 - k0),
                &|r0, r1, chunk| {
                    kernels::gemm_bt_i8(
                        self.backend,
                        &ad[r0 * k..],
                        k,
                        bd,
                        k,
                        chunk,
                        n,
                        r1 - r0,
                        n,
                        k0,
                        k1,
                    );
                },
            );
            f(t, &tile);
        }
    }

    /// Streams the exact i32 PSUM tiles of `a · b` along K to `f`, one
    /// reusable buffer, no `Vec<Int32Tensor>` — the integration point for
    /// folding APSQ quantization directly into the K loop.
    ///
    /// # Panics
    ///
    /// Panics if operands are not rank-2, inner dims disagree, or
    /// `k_tile == 0`.
    pub fn int8_for_each_k_tile(
        &self,
        a: &Int8Tensor,
        b: &Int8Tensor,
        k_tile: usize,
        mut f: impl FnMut(usize, &Int32Tensor),
    ) {
        assert!(k_tile > 0, "k_tile must be positive");
        let (m, k, n) = dims_i8(a, b);
        let np = k.div_ceil(k_tile);
        let mut tile = Int32Tensor::zeros([m, n]);
        for t in 0..np {
            let k0 = t * k_tile;
            let k1 = usize::min(k0 + k_tile, k);
            tile.data_mut().fill(0);
            self.gemm_i8_rows(a.data(), b.data(), tile.data_mut(), m, k, n, k0, k1);
            f(t, &tile);
        }
    }

    /// Collects the exact i32 PSUM tile stream into a `Vec`. Prefer
    /// [`ExecEngine::int8_for_each_k_tile`] unless every tile is needed at
    /// once (e.g. scale calibration).
    ///
    /// # Panics
    ///
    /// Panics if operands are not rank-2, inner dims disagree, or
    /// `k_tile == 0`.
    pub fn int8_matmul_psum_tiles(
        &self,
        a: &Int8Tensor,
        b: &Int8Tensor,
        k_tile: usize,
    ) -> Vec<Int32Tensor> {
        let mut tiles = Vec::new();
        self.int8_for_each_k_tile(a, b, k_tile, |_, tile| tiles.push(tile.clone()));
        tiles
    }

    /// Low-level ranged integer GEMM over sub-blocks of larger matrices:
    /// accumulates `out[i, j] += Σ_{l ∈ [k0, k1)} a[i, l] · b[l, j]` for
    /// `i < m`, `j < n` with explicit leading dimensions. This is the entry
    /// point the accelerator simulators use to compute one PE-array output
    /// tile in place (slicing `a` by row/K range and `b` by column range),
    /// parallelized over the tile's rows.
    ///
    /// # Panics
    ///
    /// Panics if any row of the addressed region escapes a slice.
    #[allow(clippy::too_many_arguments)]
    pub fn int8_gemm_block(
        &self,
        a: &[i8],
        lda: usize,
        b: &[i8],
        ldb: usize,
        out: &mut [i32],
        ldo: usize,
        m: usize,
        n: usize,
        k0: usize,
        k1: usize,
    ) {
        self.partition_rows(out, ldo, m, m * n * (k1 - k0), &|r0, r1, chunk| {
            kernels::gemm_i8(
                self.backend,
                &a[r0 * lda..],
                lda,
                b,
                ldb,
                chunk,
                ldo,
                r1 - r0,
                n,
                k0,
                k1,
            );
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn gemm_i8_rows(
        &self,
        a: &[i8],
        b: &[i8],
        out: &mut [i32],
        m: usize,
        k: usize,
        n: usize,
        k0: usize,
        k1: usize,
    ) {
        self.partition_rows(out, n, m, m * n * (k1 - k0), &|r0, r1, chunk| {
            kernels::gemm_i8(
                self.backend,
                &a[r0 * k..],
                k,
                b,
                n,
                chunk,
                n,
                r1 - r0,
                n,
                k0,
                k1,
            );
        });
    }

    // ------------------------------------------------------------ conv/im2col

    /// im2col lowering of an `[C, H, W]` input (see [`crate::im2col`]),
    /// parallelized over output rows.
    ///
    /// # Panics
    ///
    /// Same conditions as [`crate::im2col`].
    pub fn im2col(&self, input: &Tensor, ksize: usize, stride: usize) -> Tensor {
        assert_eq!(input.rank(), 3, "im2col expects [C, H, W]");
        let dims = [input.dims()[0], input.dims()[1], input.dims()[2]];
        let (out, rows, cols) = self.im2col_buffer(input.data(), dims, ksize, stride);
        Tensor::from_vec(out, [rows, cols])
    }

    /// Integer im2col for the bit-accurate path, parallelized over output
    /// rows.
    ///
    /// # Panics
    ///
    /// Same conditions as [`crate::im2col`].
    pub fn im2col_i8(&self, input: &Int8Tensor, ksize: usize, stride: usize) -> Int8Tensor {
        assert_eq!(input.shape().rank(), 3, "im2col expects [C, H, W]");
        let dims = [input.dims()[0], input.dims()[1], input.dims()[2]];
        let (out, rows, cols) = self.im2col_buffer(input.data(), dims, ksize, stride);
        Int8Tensor::from_vec(out, [rows, cols])
    }

    /// Shared im2col geometry + parallel fill for both element types:
    /// returns the `[rows, cols]` patch matrix as a flat buffer.
    fn im2col_buffer<T: Copy + Default + Send + Sync>(
        &self,
        data: &[T],
        [c, h, w]: [usize; 3],
        ksize: usize,
        stride: usize,
    ) -> (Vec<T>, usize, usize) {
        assert!(ksize > 0 && stride > 0, "degenerate kernel/stride");
        assert!(
            h >= ksize && w >= ksize,
            "kernel {ksize} does not fit {h}x{w}"
        );
        let ho = (h - ksize) / stride + 1;
        let wo = (w - ksize) / stride + 1;
        let cols = c * ksize * ksize;
        let mut out = vec![T::default(); ho * wo * cols];
        self.partition_rows(&mut out, cols, ho * wo, ho * wo * cols, &|r0, r1, chunk| {
            im2col_rows(data, chunk, r0, r1, c, h, w, ksize, stride, wo, cols);
        });
        (out, ho * wo, cols)
    }

    /// Convolution via im2col + GEMM: `[C, H, W] ⊛ [Co, C, K, K]` →
    /// `[Ho·Wo, Co]` (the GEMM layout the accelerator produces), both
    /// stages running through the engine.
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatches.
    pub fn conv2d_i8_gemm(
        &self,
        input: &Int8Tensor,
        weight: &Int8Tensor,
        stride: usize,
    ) -> Int32Tensor {
        assert_eq!(weight.shape().rank(), 4, "weight must be [Co, C, K, K]");
        let (co, c, k) = (weight.dims()[0], weight.dims()[1], weight.dims()[2]);
        let lowered = self.im2col_i8(input, k, stride);
        // Reshape weights to [C·K·K, Co].
        let cols = c * k * k;
        let mut wmat = vec![0i8; cols * co];
        for oc in 0..co {
            let mut idx = 0;
            for ch in 0..c {
                for ky in 0..k {
                    for kx in 0..k {
                        wmat[idx * co + oc] = weight.at(&[oc, ch, ky, kx]);
                        idx += 1;
                    }
                }
            }
        }
        let wmat = Int8Tensor::from_vec(wmat, [cols, co]);
        self.int8_matmul(&lowered, &wmat)
    }
}

/// Copies im2col patch rows `[r0, r1)` into `chunk` (local row 0 = global
/// row `r0`); generic over the element type so f32 and i8 share the loop.
#[allow(clippy::too_many_arguments)]
fn im2col_rows<T: Copy>(
    data: &[T],
    chunk: &mut [T],
    r0: usize,
    r1: usize,
    c: usize,
    h: usize,
    w: usize,
    ksize: usize,
    stride: usize,
    wo: usize,
    cols: usize,
) {
    for row in r0..r1 {
        let (oy, ox) = (row / wo, row % wo);
        let dst = &mut chunk[(row - r0) * cols..(row - r0 + 1) * cols];
        let mut col = 0;
        for ch in 0..c {
            for ky in 0..ksize {
                let src = ch * h * w + (oy * stride + ky) * w + ox * stride;
                for kx in 0..ksize {
                    dst[col] = data[src + kx];
                    col += 1;
                }
            }
        }
    }
}

fn dims_mm(a: &Tensor, b: &Tensor) -> (usize, usize, usize) {
    assert_eq!(a.rank(), 2, "matmul: `a` must be rank-2, got {}", a.shape());
    assert_eq!(b.rank(), 2, "matmul: `b` must be rank-2, got {}", b.shape());
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (kb, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, kb, "matmul: inner dimensions {k} vs {kb} disagree");
    (m, k, n)
}

fn dims_bt(a: &Tensor, b: &Tensor) -> (usize, usize, usize) {
    assert_eq!(a.rank(), 2, "matmul_bt: `a` must be rank-2");
    assert_eq!(b.rank(), 2, "matmul_bt: `b` must be rank-2");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (n, kb) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, kb, "matmul_bt: inner dimensions {k} vs {kb} disagree");
    (m, k, n)
}

fn dims_at(a: &Tensor, b: &Tensor) -> (usize, usize, usize) {
    assert_eq!(a.rank(), 2, "matmul_at: `a` must be rank-2");
    assert_eq!(b.rank(), 2, "matmul_at: `b` must be rank-2");
    let (k, m) = (a.dims()[0], a.dims()[1]);
    let (kb, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, kb, "matmul_at: inner dimensions {k} vs {kb} disagree");
    (m, k, n)
}

fn dims_i8(a: &Int8Tensor, b: &Int8Tensor) -> (usize, usize, usize) {
    assert_eq!(a.shape().rank(), 2, "int8_matmul: `a` must be rank-2");
    assert_eq!(b.shape().rank(), 2, "int8_matmul: `b` must be rank-2");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (kb, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, kb, "int8_matmul: inner dimensions {k} vs {kb} disagree");
    (m, k, n)
}

fn dims_batched_bt_i8(a: &Int8Tensor, b: &Int8Tensor) -> (usize, usize, usize, usize) {
    assert_eq!(
        a.shape().rank(),
        3,
        "int8_batched_matmul_bt: `a` must be rank-3"
    );
    assert_eq!(
        b.shape().rank(),
        3,
        "int8_batched_matmul_bt: `b` must be rank-3"
    );
    let (ba, m, k) = (a.dims()[0], a.dims()[1], a.dims()[2]);
    let (bb, n, kb) = (b.dims()[0], b.dims()[1], b.dims()[2]);
    assert_eq!(
        ba, bb,
        "int8_batched_matmul_bt: batch sizes {ba} vs {bb} disagree"
    );
    assert_eq!(
        k, kb,
        "int8_batched_matmul_bt: K dimensions {k} vs {kb} disagree"
    );
    (ba, m, k, n)
}

fn dims_bt_i8(a: &Int8Tensor, b: &Int8Tensor) -> (usize, usize, usize) {
    assert_eq!(a.shape().rank(), 2, "int8_matmul_bt: `a` must be rank-2");
    assert_eq!(b.shape().rank(), 2, "int8_matmul_bt: `b` must be rank-2");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (n, kb) = (b.dims()[0], b.dims()[1]);
    assert_eq!(
        k, kb,
        "int8_matmul_bt: inner dimensions {k} vs {kb} disagree"
    );
    (m, k, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f32_pair(m: usize, k: usize, n: usize) -> (Tensor, Tensor) {
        let a = Tensor::from_vec(
            (0..m * k)
                .map(|x| ((x * 31 + 7) % 101) as f32 * 0.03 - 1.5)
                .collect(),
            [m, k],
        );
        let b = Tensor::from_vec(
            (0..k * n)
                .map(|x| ((x * 17 + 3) % 97) as f32 * 0.05 - 2.4)
                .collect(),
            [k, n],
        );
        (a, b)
    }

    fn i8_pair(m: usize, k: usize, n: usize) -> (Int8Tensor, Int8Tensor) {
        let a = Int8Tensor::from_vec(
            (0..m * k).map(|x| ((x * 37 + 11) % 255) as i8).collect(),
            [m, k],
        );
        let b = Int8Tensor::from_vec(
            (0..k * n).map(|x| ((x * 73 + 5) % 251) as i8).collect(),
            [k, n],
        );
        (a, b)
    }

    #[test]
    fn f32_bit_identical_across_thread_counts() {
        // Sizes chosen to exceed the inline threshold so threads really run.
        for (m, k, n) in [(37, 64, 41), (64, 129, 33)] {
            let (a, b) = f32_pair(m, k, n);
            let want = ExecEngine::serial().matmul(&a, &b);
            for threads in [2, 3, 4, 8] {
                let eng = ExecEngine::with_threads(threads).with_spawn_threshold(0);
                assert_eq!(eng.matmul(&a, &b), want, "threads={threads} {m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn int8_bit_identical_across_thread_counts_and_matches_reference() {
        for (m, k, n) in [(29, 70, 31), (64, 128, 32)] {
            let (a, b) = i8_pair(m, k, n);
            let reference = crate::int_tensor::int8_matmul(&a, &b);
            for threads in [1, 2, 3, 8] {
                let eng = ExecEngine::with_threads(threads).with_spawn_threshold(0);
                assert_eq!(
                    eng.int8_matmul(&a, &b),
                    reference,
                    "threads={threads} {m}x{k}x{n}"
                );
            }
        }
    }

    #[test]
    fn small_dispatch_runs_inline_and_still_matches() {
        let (a, b) = f32_pair(3, 4, 5);
        assert_eq!(
            ExecEngine::with_threads(8).matmul(&a, &b),
            ExecEngine::serial().matmul(&a, &b)
        );
    }

    #[test]
    fn into_variants_overwrite_stale_contents() {
        let (a, b) = f32_pair(6, 10, 7);
        let eng = ExecEngine::serial();
        let mut out = Tensor::full([6, 7], 123.0);
        eng.matmul_into(&a, &b, &mut out);
        assert_eq!(out, eng.matmul(&a, &b));

        let bt = b.transpose();
        let mut out = Tensor::full([6, 10], -9.0);
        eng.matmul_bt_into(&eng.matmul(&a, &b), &bt.transpose(), &mut out);
        // (a·b)·bᵀᵀᵀ sanity is covered elsewhere; here: buffer equality.
        assert_eq!(out, eng.matmul_bt(&eng.matmul(&a, &b), &bt.transpose()));

        let at = a.transpose();
        let mut out = Tensor::full([6, 7], 7.0);
        eng.matmul_at_into(&at, &b, &mut out);
        assert_eq!(out, eng.matmul_at(&at, &b));
    }

    #[test]
    fn at_acc_accumulates() {
        let (a, b) = f32_pair(5, 9, 4);
        let at = a.transpose();
        let eng = ExecEngine::serial();
        let grad1 = eng.matmul_at(&at, &b);
        let mut acc = grad1.clone();
        eng.matmul_at_acc(&at, &b, &mut acc);
        for (x, y) in acc.data().iter().zip(grad1.data()) {
            assert!((x - 2.0 * y).abs() <= 1e-4 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn k_tiles_stream_matches_collected_tiles() {
        let (a, b) = f32_pair(5, 23, 6);
        let eng = ExecEngine::with_threads(2).with_spawn_threshold(0);
        let collected = eng.matmul_psum_tiles(&a, &b, 7);
        let mut steps = 0;
        eng.for_each_k_tile(&a, &b, 7, |step, tile| {
            assert_eq!(tile, &collected[step]);
            steps += 1;
        });
        assert_eq!(steps, 23usize.div_ceil(7));
    }

    fn transpose_i8(b: &Int8Tensor) -> Int8Tensor {
        let (k, n) = (b.dims()[0], b.dims()[1]);
        let mut bt = vec![0i8; n * k];
        for l in 0..k {
            for j in 0..n {
                bt[j * k + l] = b.data()[l * n + j];
            }
        }
        Int8Tensor::from_vec(bt, [n, k])
    }

    #[test]
    fn int8_bt_matches_plain_across_thread_counts() {
        for (m, k, n) in [(1, 70, 31), (13, 128, 32)] {
            let (a, b) = i8_pair(m, k, n);
            let bt = transpose_i8(&b);
            let want = ExecEngine::serial().int8_matmul(&a, &b);
            for threads in [1, 3, 8] {
                let eng = ExecEngine::with_threads(threads).with_spawn_threshold(0);
                assert_eq!(eng.int8_matmul_bt(&a, &bt), want, "threads={threads}");
            }
        }
    }

    #[test]
    fn int8_bt_k_tiles_match_kn_layout_tiles() {
        let (a, b) = i8_pair(6, 33, 5);
        let bt = transpose_i8(&b);
        let eng = ExecEngine::with_threads(3).with_spawn_threshold(0);
        let legacy = crate::int_tensor::int8_matmul_psum_tiles(&a, &b, 8);
        let mut steps = 0;
        eng.int8_bt_for_each_k_tile(&a, &bt, 8, |step, tile| {
            assert_eq!(tile, &legacy[step], "step {step}");
            steps += 1;
        });
        assert_eq!(steps, 33usize.div_ceil(8));
    }

    /// Builds a `[B, M, K] / [B, N, K]` batched pair whose per-batch
    /// contents differ.
    fn batched_i8_pair(bsz: usize, m: usize, k: usize, n: usize) -> (Int8Tensor, Int8Tensor) {
        let a = Int8Tensor::from_vec(
            (0..bsz * m * k)
                .map(|x| ((x * 37 + 11) % 255) as i8)
                .collect(),
            [bsz, m, k],
        );
        let b = Int8Tensor::from_vec(
            (0..bsz * n * k)
                .map(|x| ((x * 73 + 5) % 251) as i8)
                .collect(),
            [bsz, n, k],
        );
        (a, b)
    }

    #[test]
    fn int8_batched_bt_matches_per_batch_bt() {
        let (bsz, m, k, n) = (3usize, 2usize, 33usize, 5usize);
        let (a, b) = batched_i8_pair(bsz, m, k, n);
        for threads in [1usize, 3] {
            let eng = ExecEngine::with_threads(threads).with_spawn_threshold(0);
            let out = eng.int8_batched_matmul_bt(&a, &b);
            assert_eq!(out.dims(), &[bsz, m, n]);
            for batch in 0..bsz {
                let ab = Int8Tensor::from_vec(
                    a.data()[batch * m * k..(batch + 1) * m * k].to_vec(),
                    [m, k],
                );
                let bb = Int8Tensor::from_vec(
                    b.data()[batch * n * k..(batch + 1) * n * k].to_vec(),
                    [n, k],
                );
                let want = eng.int8_matmul_bt(&ab, &bb);
                assert_eq!(
                    &out.data()[batch * m * n..(batch + 1) * m * n],
                    want.data(),
                    "batch {batch} threads {threads}"
                );
            }
        }
    }

    #[test]
    fn int8_rowscaled_batched_bt_applies_per_row_scales() {
        let (bsz, m, k, n) = (2usize, 1usize, 16usize, 4usize);
        let (a, b) = batched_i8_pair(bsz, m, k, n);
        let scales: Vec<f32> = (0..bsz * n).map(|i| ((i as i32) - 3) as f32).collect();
        let eng = ExecEngine::serial();
        let acc = eng.int8_batched_matmul_bt(&a, &b);
        let out = eng.int8_rowscaled_batched_matmul_bt(&a, &b, 0.5, &scales);
        assert_eq!(out.dims(), &[bsz, m, n]);
        for batch in 0..bsz {
            for j in 0..n {
                let want = acc.data()[batch * n + j] as f32 * 0.5 * scales[batch * n + j];
                assert_eq!(out.data()[batch * n + j], want, "batch {batch} col {j}");
            }
        }
    }

    #[test]
    fn int8_batched_bt_k_tiles_sum_to_full_gemm() {
        let (bsz, m, k, n) = (2usize, 2usize, 23usize, 3usize);
        let (a, b) = batched_i8_pair(bsz, m, k, n);
        let eng = ExecEngine::with_threads(2).with_spawn_threshold(0);
        let want = eng.int8_batched_matmul_bt(&a, &b);
        let mut acc = Int32Tensor::zeros([bsz, m, n]);
        let mut steps = 0;
        eng.int8_batched_bt_for_each_k_tile(&a, &b, 7, |step, tile| {
            assert_eq!(step, steps);
            acc = acc.checked_add(tile).unwrap();
            steps += 1;
        });
        assert_eq!(steps, 23usize.div_ceil(7));
        assert_eq!(acc, want);
    }

    #[test]
    fn int8_batched_kn_k_tiles_sum_to_batched_matmul() {
        let (bsz, m, k, n) = (3usize, 1usize, 29usize, 6usize);
        let a = Int8Tensor::from_vec(
            (0..bsz * m * k)
                .map(|x| ((x * 31 + 7) % 253) as i8)
                .collect(),
            [bsz, m, k],
        );
        let b = Int8Tensor::from_vec(
            (0..bsz * k * n)
                .map(|x| ((x * 41 + 13) % 249) as i8)
                .collect(),
            [bsz, k, n],
        );
        for threads in [1usize, 4] {
            let eng = ExecEngine::with_threads(threads).with_spawn_threshold(0);
            let want = eng.int8_batched_matmul(&a, &b);
            let mut acc = Int32Tensor::zeros([bsz, m, n]);
            eng.int8_batched_for_each_k_tile(&a, &b, 8, |_, tile| {
                acc = acc.checked_add(tile).unwrap();
            });
            assert_eq!(acc, want, "threads={threads}");
        }
    }

    #[test]
    fn int8_acc_accumulates_exactly() {
        let (a, b) = i8_pair(5, 40, 6);
        let eng = ExecEngine::with_threads(2).with_spawn_threshold(0);
        let once = eng.int8_matmul(&a, &b);
        let mut acc = once.clone();
        eng.int8_matmul_acc(&a, &b, &mut acc);
        for (x, y) in acc.data().iter().zip(once.data()) {
            assert_eq!(*x, 2 * y);
        }
    }

    #[test]
    fn int8_batched_matches_per_batch() {
        let (a0, b0) = i8_pair(3, 16, 5);
        let (mut a1, mut b1) = i8_pair(3, 16, 5);
        a1.data_mut()
            .iter_mut()
            .for_each(|v| *v = v.wrapping_add(3));
        b1.data_mut()
            .iter_mut()
            .for_each(|v| *v = v.wrapping_sub(7));
        let mut ad = a0.data().to_vec();
        ad.extend_from_slice(a1.data());
        let mut bd = b0.data().to_vec();
        bd.extend_from_slice(b1.data());
        let a = Int8Tensor::from_vec(ad, [2, 3, 16]);
        let b = Int8Tensor::from_vec(bd, [2, 16, 5]);
        let eng = ExecEngine::with_threads(2).with_spawn_threshold(0);
        let out = eng.int8_batched_matmul(&a, &b);
        assert_eq!(out.dims(), &[2, 3, 5]);
        let want0 = eng.int8_matmul(&a0, &b0);
        let want1 = eng.int8_matmul(&a1, &b1);
        assert_eq!(&out.data()[..15], want0.data());
        assert_eq!(&out.data()[15..], want1.data());
    }

    #[test]
    fn int8_k_tiles_match_legacy_psum_tiles() {
        let (a, b) = i8_pair(6, 33, 5);
        let eng = ExecEngine::with_threads(3).with_spawn_threshold(0);
        let legacy = crate::int_tensor::int8_matmul_psum_tiles(&a, &b, 8);
        eng.int8_for_each_k_tile(&a, &b, 8, |step, tile| {
            assert_eq!(tile, &legacy[step], "step {step}");
        });
    }

    #[test]
    fn tiled_fold_without_collecting_is_matmul() {
        let (a, b) = f32_pair(4, 30, 5);
        let eng = ExecEngine::serial();
        let folded = eng.matmul_tiled_fold(&a, &b, 9, |_, run, tile| {
            *run = &*run + tile;
        });
        // Tile-by-tile summation reassociates the float reduction, so
        // compare within rounding rather than bitwise.
        for (x, y) in folded.data().iter().zip(eng.matmul(&a, &b).data()) {
            assert!((x - y).abs() <= 1e-4 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn engine_conv_matches_legacy_conv() {
        let x = Int8Tensor::from_vec(
            (0..3 * 9 * 9).map(|v| ((v * 29 + 3) % 251) as i8).collect(),
            [3, 9, 9],
        );
        let w = Int8Tensor::from_vec(
            (0..4 * 3 * 3 * 3)
                .map(|v| ((v * 53 + 1) % 241) as i8)
                .collect(),
            [4, 3, 3, 3],
        );
        let legacy = crate::conv::conv2d_i8_gemm(&x, &w, 2);
        for threads in [1, 4] {
            let eng = ExecEngine::with_threads(threads).with_spawn_threshold(0);
            assert_eq!(eng.conv2d_i8_gemm(&x, &w, 2), legacy, "threads={threads}");
        }
    }

    #[test]
    fn batched_matches_per_batch() {
        let a = Tensor::from_vec((0..2 * 3 * 4).map(|x| x as f32 * 0.1).collect(), [2, 3, 4]);
        let b = Tensor::from_vec((0..2 * 4 * 5).map(|x| x as f32 * 0.2).collect(), [2, 4, 5]);
        let eng = ExecEngine::serial();
        let out = eng.batched_matmul(&a, &b);
        assert_eq!(out.dims(), &[2, 3, 5]);
        let legacy = crate::matmul::batched_matmul(&a, &b);
        for (x, y) in out.data().iter().zip(legacy.data()) {
            assert!((x - y).abs() <= 1e-4 * (1.0 + y.abs()));
        }
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        ExecEngine::with_threads(0);
    }

    #[test]
    fn degenerate_extents_produce_empty_tensors() {
        // Zero-row/column operands must yield empty results, not panic
        // (regression: matmul_bt_into once divided by n == 0).
        let eng = ExecEngine::with_threads(2).with_spawn_threshold(0);
        assert_eq!(
            eng.matmul_bt(&Tensor::zeros([3, 4]), &Tensor::zeros([0, 4])),
            Tensor::zeros([3, 0])
        );
        assert_eq!(
            eng.matmul(&Tensor::zeros([0, 4]), &Tensor::zeros([4, 5])),
            Tensor::zeros([0, 5])
        );
        assert_eq!(
            eng.matmul_at(&Tensor::zeros([4, 0]), &Tensor::zeros([4, 3])),
            Tensor::zeros([0, 3])
        );
    }
}
