//! Integer tensors for the bit-accurate hardware path.
//!
//! In the paper's W8A8 setting, weights and activations are `i8`, a MAC
//! product is `i16`, and partial sums (PSUMs) accumulate in `i32`
//! (Section II-A: a depth-`Ci` accumulation needs `16 + log2(Ci)` bits).

use crate::shape::Shape;
use std::fmt;

macro_rules! int_tensor {
    ($(#[$meta:meta])* $name:ident, $elem:ty) => {
        $(#[$meta])*
        #[derive(Clone, PartialEq, Eq)]
        pub struct $name {
            data: Vec<$elem>,
            shape: Shape,
        }

        impl $name {
            /// Creates a tensor from raw data and a shape.
            ///
            /// # Panics
            ///
            /// Panics if `data.len() != shape.numel()`.
            pub fn from_vec<S: Into<Shape>>(data: Vec<$elem>, shape: S) -> Self {
                let shape = shape.into();
                assert_eq!(
                    data.len(),
                    shape.numel(),
                    "data length {} does not match shape {}",
                    data.len(),
                    shape
                );
                Self { data, shape }
            }

            /// Creates a zero-filled tensor.
            pub fn zeros<S: Into<Shape>>(shape: S) -> Self {
                let shape = shape.into();
                Self { data: vec![0; shape.numel()], shape }
            }

            /// The shape of the tensor.
            pub fn shape(&self) -> &Shape {
                &self.shape
            }

            /// The extents of the tensor.
            pub fn dims(&self) -> &[usize] {
                self.shape.dims()
            }

            /// The number of elements.
            pub fn numel(&self) -> usize {
                self.shape.numel()
            }

            /// Borrow of the underlying row-major storage.
            pub fn data(&self) -> &[$elem] {
                &self.data
            }

            /// Mutable borrow of the underlying row-major storage.
            pub fn data_mut(&mut self) -> &mut [$elem] {
                &mut self.data
            }

            /// Consumes the tensor and returns the underlying storage.
            pub fn into_vec(self) -> Vec<$elem> {
                self.data
            }

            /// Value at a multi-index.
            ///
            /// # Panics
            ///
            /// Panics if the index is out of bounds or the wrong rank.
            pub fn at(&self, index: &[usize]) -> $elem {
                self.data[self.shape.offset(index)]
            }

            /// Sets the value at a multi-index.
            ///
            /// # Panics
            ///
            /// Panics if the index is out of bounds or the wrong rank.
            pub fn set(&mut self, index: &[usize], value: $elem) {
                let off = self.shape.offset(index);
                self.data[off] = value;
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if self.numel() <= 16 {
                    write!(f, "{}({}, {:?})", stringify!($name), self.shape, self.data)
                } else {
                    write!(
                        f,
                        "{}({}, [{}, .., {}])",
                        stringify!($name),
                        self.shape,
                        self.data[0],
                        self.data[self.data.len() - 1]
                    )
                }
            }
        }
    };
}

int_tensor!(
    /// A dense row-major `i8` tensor: quantized weights and activations.
    Int8Tensor,
    i8
);

int_tensor!(
    /// A dense row-major `i32` tensor: exact partial sums / accumulators.
    Int32Tensor,
    i32
);

impl Int32Tensor {
    /// Elementwise wrapping addition of two same-shaped tensors.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn wrapping_add(&self, other: &Int32Tensor) -> Int32Tensor {
        assert_eq!(self.shape, other.shape, "wrapping_add: shape mismatch");
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| a.wrapping_add(b))
            .collect();
        Int32Tensor {
            data,
            shape: self.shape.clone(),
        }
    }

    /// Elementwise checked addition; returns `None` on any i32 overflow.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn checked_add(&self, other: &Int32Tensor) -> Option<Int32Tensor> {
        assert_eq!(self.shape, other.shape, "checked_add: shape mismatch");
        let mut data = Vec::with_capacity(self.data.len());
        for (&a, &b) in self.data.iter().zip(other.data.iter()) {
            data.push(a.checked_add(b)?);
        }
        Some(Int32Tensor {
            data,
            shape: self.shape.clone(),
        })
    }

    /// Widens to `f32` for comparisons against the float reference path.
    pub fn to_f32(&self) -> crate::tensor::Tensor {
        crate::tensor::Tensor::from_vec(
            self.data.iter().map(|&v| v as f32).collect(),
            self.shape.clone(),
        )
    }
}

impl Int8Tensor {
    /// Widens to `i32`.
    pub fn to_i32(&self) -> Int32Tensor {
        Int32Tensor::from_vec(
            self.data.iter().map(|&v| v as i32).collect(),
            self.shape.clone(),
        )
    }

    /// Quantizes a float tensor to i8 codes at a per-tensor power-of-two
    /// scale: `q = clamp(round(x / scale), −128, 127)` — exactly the
    /// rounding the fake-quant training path applies, so codes and
    /// fake-quantized values stay on the same lattice.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not a positive power of two.
    pub fn quantize(x: &crate::tensor::Tensor, scale: f32) -> Int8Tensor {
        assert_pow2(scale);
        Int8Tensor::from_vec(
            x.data()
                .iter()
                .map(|&v| (v / scale).round().clamp(-128.0, 127.0) as i8)
                .collect(),
            x.shape().clone(),
        )
    }

    /// Dequantizes the codes back to floats: `x̃ = q · scale`.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not a positive power of two.
    pub fn dequantize(&self, scale: f32) -> crate::tensor::Tensor {
        assert_pow2(scale);
        crate::tensor::Tensor::from_vec(
            self.data.iter().map(|&v| v as f32 * scale).collect(),
            self.shape.clone(),
        )
    }

    /// Relative L2 error of the quantize→dequantize round trip of `x` at a
    /// per-tensor power-of-two scale — the one-liner benches and tests
    /// previously hand-rolled.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not a positive power of two.
    pub fn roundtrip_rel_error(x: &crate::tensor::Tensor, scale: f32) -> f32 {
        let back = Int8Tensor::quantize(x, scale).dequantize(scale);
        rel_l2_error(x, &back)
    }
}

impl Int32Tensor {
    /// Quantizes a float tensor to i32 codes at a per-tensor power-of-two
    /// scale (round + saturate to the i32 range).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not a positive power of two.
    pub fn quantize(x: &crate::tensor::Tensor, scale: f32) -> Int32Tensor {
        assert_pow2(scale);
        Int32Tensor::from_vec(
            x.data()
                .iter()
                .map(|&v| (v / scale).round().clamp(i32::MIN as f32, i32::MAX as f32) as i32)
                .collect(),
            x.shape().clone(),
        )
    }

    /// Dequantizes the codes back to floats: `x̃ = q · scale`.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not a positive power of two.
    pub fn dequantize(&self, scale: f32) -> crate::tensor::Tensor {
        assert_pow2(scale);
        crate::tensor::Tensor::from_vec(
            self.data.iter().map(|&v| v as f32 * scale).collect(),
            self.shape.clone(),
        )
    }

    /// Relative L2 error of the i32 quantize→dequantize round trip at a
    /// per-tensor power-of-two scale.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not a positive power of two.
    pub fn roundtrip_rel_error(x: &crate::tensor::Tensor, scale: f32) -> f32 {
        let back = Int32Tensor::quantize(x, scale).dequantize(scale);
        rel_l2_error(x, &back)
    }
}

/// Shared pow2-scale validation for the round-trip helpers.
fn assert_pow2(scale: f32) {
    assert!(
        scale > 0.0 && scale.is_finite() && scale.log2().fract() == 0.0,
        "scale {scale} is not a positive power of two"
    );
}

/// `‖x − y‖₂ / max(‖x‖₂, ε)`.
fn rel_l2_error(x: &crate::tensor::Tensor, y: &crate::tensor::Tensor) -> f32 {
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (&a, &b) in x.data().iter().zip(y.data().iter()) {
        num += ((a - b) as f64).powi(2); // lint: allow(float-reduction-outside-kernels) -- diagnostic norm, fixed zip order, single-threaded
        den += (a as f64).powi(2); // lint: allow(float-reduction-outside-kernels) -- diagnostic norm, fixed zip order, single-threaded
    }
    (num.sqrt() / den.sqrt().max(1e-12)) as f32
}

/// Exact integer matmul: `a` (`[M, K]` i8) × `b` (`[K, N]` i8) → `[M, N]` i32.
///
/// Products are formed in `i32` and accumulated in `i32`; for `K ≤ 2^15`
/// this cannot overflow (|product| ≤ 2^14, so |sum| ≤ 2^29).
///
/// # Panics
///
/// Panics if operands are not rank-2 or inner dims disagree.
pub fn int8_matmul(a: &Int8Tensor, b: &Int8Tensor) -> Int32Tensor {
    crate::exec::ExecEngine::serial().int8_matmul(a, b)
}

/// K-tiled exact integer matmul: returns the stream of i32 PSUM tiles
/// `Tp_i` (each `[M, N]`), whose elementwise sum is [`int8_matmul`].
///
/// Tile `i` covers input-channel rows `i·k_tile .. (i+1)·k_tile` of `b` —
/// this models the PE array producing one PSUM tile per `Pci` input-channel
/// slice (eq 8 of the paper).
///
/// # Panics
///
/// Panics if operands are not rank-2, inner dims disagree, or `k_tile == 0`.
pub fn int8_matmul_psum_tiles(a: &Int8Tensor, b: &Int8Tensor, k_tile: usize) -> Vec<Int32Tensor> {
    crate::exec::ExecEngine::serial().int8_matmul_psum_tiles(a, b, k_tile)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_matmul() {
        let a = Int8Tensor::from_vec(vec![1, -2, 3, 4], [2, 2]);
        let b = Int8Tensor::from_vec(vec![5, 6, -7, 8], [2, 2]);
        let c = int8_matmul(&a, &b);
        assert_eq!(
            c.data(),
            &[5 + -2 * -7, 6 + -2 * 8, 3 * 5 + 4 * -7, 3 * 6 + 4 * 8]
        );
    }

    #[test]
    fn psum_tiles_sum_to_exact() {
        let a = Int8Tensor::from_vec((0..6 * 16).map(|x| (x % 17) as i8 - 8).collect(), [6, 16]);
        let b = Int8Tensor::from_vec((0..16 * 4).map(|x| (x % 11) as i8 - 5).collect(), [16, 4]);
        let exact = int8_matmul(&a, &b);
        for k_tile in [1, 3, 4, 8, 16, 32] {
            let tiles = int8_matmul_psum_tiles(&a, &b, k_tile);
            let mut acc = Int32Tensor::zeros([6, 4]);
            for t in &tiles {
                acc = acc.checked_add(t).unwrap();
            }
            assert_eq!(acc, exact, "k_tile={k_tile}");
        }
    }

    #[test]
    fn extreme_values_no_overflow() {
        // Worst case |product| = 128 * 128 = 16384; depth 512 ⇒ |sum| ≤ 2^23.
        let a = Int8Tensor::from_vec(vec![-128i8; 512], [1, 512]);
        let b = Int8Tensor::from_vec(vec![-128i8; 512], [512, 1]);
        let c = int8_matmul(&a, &b);
        assert_eq!(c.data()[0], 512 * 16384);
    }

    #[test]
    fn roundtrip_matches_fake_quant_lattice() {
        let x = crate::tensor::Tensor::from_vec(vec![0.3, -0.8, 100.0, -0.05], [4]);
        let q = Int8Tensor::quantize(&x, 0.5);
        assert_eq!(q.data(), &[1, -2, 127, 0]);
        assert_eq!(q.dequantize(0.5).data(), &[0.5, -1.0, 63.5, 0.0]);
        // In-range values round-trip within half a step.
        let err = Int8Tensor::roundtrip_rel_error(
            &crate::tensor::Tensor::from_vec(vec![0.3, -0.8, 1.9], [3]),
            0.5,
        );
        assert!(err > 0.0 && err < 0.2, "{err}");
        // Exact lattice points round-trip losslessly.
        let exact = crate::tensor::Tensor::from_vec(vec![1.0, -2.5, 3.5], [3]);
        assert_eq!(Int8Tensor::roundtrip_rel_error(&exact, 0.5), 0.0);
        assert_eq!(Int32Tensor::roundtrip_rel_error(&exact, 0.5), 0.0);
        assert_eq!(Int32Tensor::quantize(&exact, 0.5).data(), &[2, -5, 7]);
    }

    #[test]
    #[should_panic(expected = "not a positive power of two")]
    fn non_pow2_scale_rejected() {
        Int8Tensor::quantize(&crate::tensor::Tensor::zeros([1]), 0.3);
    }

    #[test]
    fn checked_add_detects_overflow() {
        let a = Int32Tensor::from_vec(vec![i32::MAX], [1]);
        let b = Int32Tensor::from_vec(vec![1], [1]);
        assert!(a.checked_add(&b).is_none());
        assert_eq!(a.wrapping_add(&b).data(), &[i32::MIN]);
    }
}
