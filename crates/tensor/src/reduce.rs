//! Axis reductions over rank-2 tensors.

use crate::tensor::Tensor;

/// Sums a rank-2 tensor over axis 0, producing a vector of length `N`.
///
/// # Panics
///
/// Panics if `x` is not rank-2.
pub fn sum_axis0(x: &Tensor) -> Tensor {
    assert_eq!(x.rank(), 2, "sum_axis0 requires a rank-2 tensor");
    let (m, n) = (x.dims()[0], x.dims()[1]);
    let mut out = vec![0.0f32; n];
    for i in 0..m {
        for (o, &v) in out.iter_mut().zip(&x.data()[i * n..(i + 1) * n]) {
            *o += v;
        }
    }
    Tensor::from_vec(out, [n])
}

/// Sums a rank-2 tensor over axis 1, producing a vector of length `M`.
///
/// # Panics
///
/// Panics if `x` is not rank-2.
pub fn sum_axis1(x: &Tensor) -> Tensor {
    assert_eq!(x.rank(), 2, "sum_axis1 requires a rank-2 tensor");
    let (m, n) = (x.dims()[0], x.dims()[1]);
    let out: Vec<f32> = (0..m)
        .map(|i| x.data()[i * n..(i + 1) * n].iter().sum())
        .collect();
    Tensor::from_vec(out, [m])
}

/// Per-row mean of a rank-2 tensor.
///
/// # Panics
///
/// Panics if `x` is not rank-2 or has zero columns.
pub fn mean_axis1(x: &Tensor) -> Tensor {
    let n = x.dims()[1];
    assert!(n > 0, "mean_axis1 over zero columns");
    let s = sum_axis1(x);
    &s / (n as f32)
}

/// Per-row (biased) variance of a rank-2 tensor.
///
/// # Panics
///
/// Panics if `x` is not rank-2 or has zero columns.
pub fn var_axis1(x: &Tensor) -> Tensor {
    assert_eq!(x.rank(), 2, "var_axis1 requires a rank-2 tensor");
    let (m, n) = (x.dims()[0], x.dims()[1]);
    assert!(n > 0, "var_axis1 over zero columns");
    let mu = mean_axis1(x);
    let out: Vec<f32> = (0..m)
        .map(|i| {
            let mean = mu.data()[i];
            x.data()[i * n..(i + 1) * n]
                .iter()
                .map(|&v| (v - mean) * (v - mean))
                .sum::<f32>()
                / n as f32
        })
        .collect();
    Tensor::from_vec(out, [m])
}

/// Per-row argmax of a rank-2 tensor.
///
/// # Panics
///
/// Panics if `x` is not rank-2 or has zero columns.
pub fn argmax_axis1(x: &Tensor) -> Vec<usize> {
    assert_eq!(x.rank(), 2, "argmax_axis1 requires a rank-2 tensor");
    let (m, n) = (x.dims()[0], x.dims()[1]);
    assert!(n > 0, "argmax_axis1 over zero columns");
    (0..m)
        .map(|i| {
            let row = &x.data()[i * n..(i + 1) * n];
            let mut best = 0;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            best
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        assert_eq!(sum_axis0(&x).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(sum_axis1(&x).data(), &[6.0, 15.0]);
    }

    #[test]
    fn mean_var() {
        let x = Tensor::from_vec(vec![1.0, 3.0, 2.0, 2.0], [2, 2]);
        assert_eq!(mean_axis1(&x).data(), &[2.0, 2.0]);
        assert_eq!(var_axis1(&x).data(), &[1.0, 0.0]);
    }

    #[test]
    fn argmax_rows() {
        let x = Tensor::from_vec(vec![0.1, 0.9, 0.5, 0.2, 0.1, 0.0], [2, 3]);
        assert_eq!(argmax_axis1(&x), vec![1, 0]);
    }
}
