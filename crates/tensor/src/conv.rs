//! Convolution lowering (im2col): turns spatial convolutions into the
//! GEMMs the tile-based accelerator actually executes, so conv layers in
//! the model inventories share the same PSUM path as everything else.

use crate::int_tensor::{Int32Tensor, Int8Tensor};
use crate::tensor::Tensor;

/// Lowers an `[C, H, W]` input into the im2col matrix
/// `[Ho·Wo, C·K·K]` for a `K×K` / stride-`s` convolution (no padding —
/// matching the "enlarged ifmap" convention of the analytical framework).
///
/// # Panics
///
/// Panics if the input is not rank-3, `k == 0`, `stride == 0`, or the
/// kernel does not fit the spatial extent.
pub fn im2col(input: &Tensor, k: usize, stride: usize) -> Tensor {
    crate::exec::ExecEngine::serial().im2col(input, k, stride)
}

/// Integer im2col for the bit-accurate path.
///
/// # Panics
///
/// Same conditions as [`im2col`].
pub fn im2col_i8(input: &Int8Tensor, k: usize, stride: usize) -> Int8Tensor {
    crate::exec::ExecEngine::serial().im2col_i8(input, k, stride)
}

/// Direct (nested-loop) integer convolution: `[C, H, W] ⊛ [Co, C, K, K]`
/// with stride `s`, producing `[Co, Ho, Wo]` in exact i32. The reference
/// that im2col+GEMM must match.
///
/// # Panics
///
/// Panics on rank/shape mismatches.
pub fn conv2d_i8_reference(input: &Int8Tensor, weight: &Int8Tensor, stride: usize) -> Int32Tensor {
    assert_eq!(input.shape().rank(), 3, "input must be [C, H, W]");
    assert_eq!(weight.shape().rank(), 4, "weight must be [Co, C, K, K]");
    let (c, h, w) = (input.dims()[0], input.dims()[1], input.dims()[2]);
    let (co, cw, kh, kw) = (
        weight.dims()[0],
        weight.dims()[1],
        weight.dims()[2],
        weight.dims()[3],
    );
    assert_eq!(c, cw, "channel mismatch");
    assert_eq!(kh, kw, "only square kernels");
    let k = kh;
    let ho = (h - k) / stride + 1;
    let wo = (w - k) / stride + 1;
    let mut out = vec![0i32; co * ho * wo];
    for oc in 0..co {
        for oy in 0..ho {
            for ox in 0..wo {
                let mut acc = 0i32;
                for ch in 0..c {
                    for ky in 0..k {
                        for kx in 0..k {
                            acc += input.at(&[ch, oy * stride + ky, ox * stride + kx]) as i32
                                * weight.at(&[oc, ch, ky, kx]) as i32;
                        }
                    }
                }
                out[oc * ho * wo + oy * wo + ox] = acc;
            }
        }
    }
    Int32Tensor::from_vec(out, [co, ho, wo])
}

/// Convolution via im2col + GEMM: returns `[Ho·Wo, Co]` (the GEMM layout
/// the accelerator produces; transpose of the reference's channel-major
/// layout).
///
/// # Panics
///
/// Panics on rank/shape mismatches.
pub fn conv2d_i8_gemm(input: &Int8Tensor, weight: &Int8Tensor, stride: usize) -> Int32Tensor {
    crate::exec::ExecEngine::serial().conv2d_i8_gemm(input, weight, stride)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(c: usize, h: usize, w: usize) -> Int8Tensor {
        Int8Tensor::from_vec(
            (0..c * h * w).map(|x| ((x * 29 + 3) % 251) as i8).collect(),
            [c, h, w],
        )
    }

    fn weight(co: usize, c: usize, k: usize) -> Int8Tensor {
        Int8Tensor::from_vec(
            (0..co * c * k * k)
                .map(|x| ((x * 53 + 1) % 241) as i8)
                .collect(),
            [co, c, k, k],
        )
    }

    #[test]
    fn im2col_shape_and_content() {
        let x = Tensor::from_vec((0..3 * 3).map(|v| v as f32).collect(), [1, 3, 3]);
        let m = im2col(&x, 2, 1);
        assert_eq!(m.dims(), &[4, 4]);
        // First patch is the top-left 2×2 window.
        assert_eq!(&m.data()[..4], &[0.0, 1.0, 3.0, 4.0]);
    }

    #[test]
    fn gemm_lowering_matches_direct_convolution() {
        for (c, h, k, s, co) in [
            (3usize, 8usize, 3usize, 1usize, 4usize),
            (2, 9, 3, 2, 5),
            (1, 6, 2, 2, 3),
        ] {
            let x = input(c, h, h);
            let wt = weight(co, c, k);
            let direct = conv2d_i8_reference(&x, &wt, s);
            let gemm = conv2d_i8_gemm(&x, &wt, s);
            let ho = (h - k) / s + 1;
            for oc in 0..co {
                for oy in 0..ho {
                    for ox in 0..ho {
                        assert_eq!(
                            gemm.at(&[oy * ho + ox, oc]),
                            direct.at(&[oc, oy, ox]),
                            "c={c} h={h} k={k} s={s} co={co} at ({oc},{oy},{ox})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pointwise_conv_is_plain_gemm() {
        // A 1×1 conv lowers to exactly the input reshaped to [H·W, C].
        let x = input(4, 5, 5);
        let m = im2col_i8(&x, 1, 1);
        assert_eq!(m.dims(), &[25, 4]);
        for p in 0..25 {
            for ch in 0..4 {
                assert_eq!(m.at(&[p, ch]), x.at(&[ch, p / 5, p % 5]));
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_kernel_rejected() {
        im2col(&Tensor::zeros([1, 2, 2]), 3, 1);
    }
}
