//! Random tensor initialization.
//!
//! Normal samples are produced with the Box–Muller transform so that the
//! crate only depends on `rand` (the offline allowlist does not include
//! `rand_distr`).

use crate::shape::Shape;
use crate::tensor::Tensor;
use rand::Rng;

/// Draws a standard-normal sample via Box–Muller.
fn sample_normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    // Avoid u1 == 0 which would produce -inf.
    let u1: f32 = loop {
        let u: f32 = rng.gen();
        if u > f32::EPSILON {
            break u;
        }
    };
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Tensor with i.i.d. `N(0, std²)` entries.
pub fn randn<S: Into<Shape>, R: Rng + ?Sized>(shape: S, std: f32, rng: &mut R) -> Tensor {
    let shape = shape.into();
    let data = (0..shape.numel())
        .map(|_| sample_normal(rng) * std)
        .collect();
    Tensor::from_vec(data, shape)
}

/// Tensor with i.i.d. `U(lo, hi)` entries.
///
/// # Panics
///
/// Panics if `lo > hi`.
pub fn rand_uniform<S: Into<Shape>, R: Rng + ?Sized>(
    shape: S,
    lo: f32,
    hi: f32,
    rng: &mut R,
) -> Tensor {
    assert!(lo <= hi, "rand_uniform: lo {lo} > hi {hi}");
    let shape = shape.into();
    let data = (0..shape.numel()).map(|_| rng.gen_range(lo..=hi)).collect();
    Tensor::from_vec(data, shape)
}

/// Xavier/Glorot uniform initialization for a `[fan_in, fan_out]` weight.
pub fn xavier_uniform<R: Rng + ?Sized>(fan_in: usize, fan_out: usize, rng: &mut R) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    rand_uniform([fan_in, fan_out], -bound, bound, rng)
}

/// Kaiming/He normal initialization for a `[fan_in, fan_out]` weight.
pub fn kaiming_normal<R: Rng + ?Sized>(fan_in: usize, fan_out: usize, rng: &mut R) -> Tensor {
    let std = (2.0 / fan_in as f32).sqrt();
    randn([fan_in, fan_out], std, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn randn_statistics() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = randn([100, 100], 1.0, &mut rng);
        let mean = t.mean();
        let var = t.mean_sq() - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = rand_uniform([1000], -0.25, 0.75, &mut rng);
        assert!(t.min() >= -0.25);
        assert!(t.max() <= 0.75);
    }

    #[test]
    fn xavier_bound_scales_with_fans() {
        let mut rng = StdRng::seed_from_u64(1);
        let small = xavier_uniform(10, 10, &mut rng);
        let big = xavier_uniform(1000, 1000, &mut rng);
        assert!(small.max() > big.max());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = randn([8], 1.0, &mut StdRng::seed_from_u64(42));
        let b = randn([8], 1.0, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }
}
