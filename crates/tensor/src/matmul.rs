//! Matrix multiplication entry points, including the K-tiled variant that
//! exposes partial-sum (PSUM) tiles — the integration point for APSQ.
//!
//! These free functions are thin serial-engine wrappers over
//! [`crate::ExecEngine`], kept for ergonomic call sites; pass an engine
//! explicitly (and pick a thread count) to parallelize the same kernels.

use crate::exec::ExecEngine;
use crate::tensor::Tensor;

/// Multiplies `a` (`[M, K]`) by `b` (`[K, N]`) producing `[M, N]`.
///
/// Runs the cache-blocked micro-kernel on the calling thread; use
/// [`ExecEngine::matmul`] for the multi-threaded version (bit-identical
/// output for any thread count).
///
/// # Panics
///
/// Panics if either operand is not rank-2 or the inner dimensions disagree.
///
/// # Examples
///
/// ```
/// use apsq_tensor::{matmul, Tensor};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
/// let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2]);
/// assert_eq!(matmul(&a, &i), a);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    ExecEngine::serial().matmul(a, b)
}

/// [`matmul`] into a caller-owned `[M, N]` buffer (overwritten), avoiding
/// the output allocation.
///
/// # Panics
///
/// Panics on rank/shape mismatches, including `out`.
pub fn matmul_into(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    ExecEngine::serial().matmul_into(a, b, out);
}

/// Multiplies `a` (`[M, K]`) by the transpose of `b` (`[N, K]`), producing
/// `[M, N]` without materializing the transpose.
///
/// This is the common backward-pass primitive (`dX = dY · Wᵀ`).
///
/// # Panics
///
/// Panics if either operand is not rank-2 or the K dimensions disagree.
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Tensor {
    ExecEngine::serial().matmul_bt(a, b)
}

/// [`matmul_bt`] into a caller-owned `[M, N]` buffer (overwritten).
///
/// # Panics
///
/// Panics on rank/shape mismatches, including `out`.
pub fn matmul_bt_into(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    ExecEngine::serial().matmul_bt_into(a, b, out);
}

/// Multiplies the transpose of `a` (`[K, M]`) by `b` (`[K, N]`), producing
/// `[M, N]` without materializing the transpose.
///
/// This is the weight-gradient primitive (`dW = Xᵀ · dY`).
///
/// # Panics
///
/// Panics if either operand is not rank-2 or the K dimensions disagree.
pub fn matmul_at(a: &Tensor, b: &Tensor) -> Tensor {
    ExecEngine::serial().matmul_at(a, b)
}

/// [`matmul_at`] into a caller-owned `[M, N]` buffer (overwritten).
///
/// # Panics
///
/// Panics on rank/shape mismatches, including `out`.
pub fn matmul_at_into(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    ExecEngine::serial().matmul_at_into(a, b, out);
}

/// Batched matmul: `[B, M, K] × [B, K, N] → [B, M, N]`.
///
/// # Panics
///
/// Panics if operands are not rank-3 or batch/inner dims disagree.
pub fn batched_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    ExecEngine::serial().batched_matmul(a, b)
}

/// Splits the reduction axis of `a · b` into `ceil(K / k_tile)` tiles and
/// returns the sequence of partial-sum matrices `Tp_i` (each `[M, N]`).
///
/// The full product is exactly `Σ_i Tp_i` (eq 8 of the paper). This is how
/// both the QAT path and the hardware simulators obtain realistic PSUM tile
/// streams: tile `i` covers input-channel columns `i·k_tile .. (i+1)·k_tile`.
///
/// Prefer [`ExecEngine::for_each_k_tile`] when the tiles feed a sequential
/// fold — it reuses one buffer instead of materializing the whole stream.
///
/// # Panics
///
/// Panics if operands are not rank-2, inner dims disagree, or `k_tile == 0`.
pub fn matmul_psum_tiles(a: &Tensor, b: &Tensor, k_tile: usize) -> Vec<Tensor> {
    ExecEngine::serial().matmul_psum_tiles(a, b, k_tile)
}

/// Computes `a · b` by folding the K-tiled PSUM stream through `fold`.
///
/// `fold(step, running, tile)` is called once per PSUM tile with the running
/// accumulation so far (`running` initially zero). The default fold —
/// `running += tile` — reproduces plain matmul; a fold that requantizes
/// `running` after adding implements APSQ in the fake-quant (float) domain.
///
/// Tiles are streamed through one reusable buffer (no `Vec<Tensor>` is
/// materialized).
///
/// # Panics
///
/// Panics if operands are not rank-2, inner dims disagree, or `k_tile == 0`.
pub fn matmul_tiled_fold(
    a: &Tensor,
    b: &Tensor,
    k_tile: usize,
    fold: impl FnMut(usize, &mut Tensor, &Tensor),
) -> Tensor {
    ExecEngine::serial().matmul_tiled_fold(a, b, k_tile, fold)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros([m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for l in 0..k {
                    acc += a.at(&[i, l]) * b.at(&[l, j]);
                }
                out.set(&[i, j], acc);
            }
        }
        out
    }

    fn arange(m: usize, n: usize) -> Tensor {
        Tensor::from_vec(
            (0..m * n).map(|x| (x as f32) * 0.25 - 3.0).collect(),
            [m, n],
        )
    }

    #[test]
    fn matches_naive() {
        let a = arange(4, 6);
        let b = arange(6, 5);
        let c = matmul(&a, &b);
        let r = naive(&a, &b);
        for (x, y) in c.data().iter().zip(r.data()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn bt_and_at_match() {
        let a = arange(3, 4);
        let b = arange(4, 5);
        let c = matmul(&a, &b);
        let c_bt = matmul_bt(&a, &b.transpose());
        let c_at = matmul_at(&a.transpose(), &b);
        for (x, y) in c.data().iter().zip(c_bt.data()) {
            assert!((x - y).abs() < 1e-4);
        }
        for (x, y) in c.data().iter().zip(c_at.data()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn into_variants_match_allocating_ones() {
        let a = arange(3, 7);
        let b = arange(7, 4);
        let mut out = Tensor::full([3, 4], f32::NAN);
        matmul_into(&a, &b, &mut out);
        assert_eq!(out, matmul(&a, &b));

        let bt = arange(5, 7); // [N, K] operand for the bt variant
        let mut out = Tensor::full([3, 5], f32::NAN);
        matmul_bt_into(&a, &bt, &mut out);
        assert_eq!(out, matmul_bt(&a, &bt));

        let at = b; // [K, M] operand: at = [7, 4] ⇒ atᵀ·a2 needs a2 [7, N]
        let a2 = arange(7, 6);
        let mut out = Tensor::full([4, 6], f32::NAN);
        matmul_at_into(&at, &a2, &mut out);
        assert_eq!(out, matmul_at(&at, &a2));
    }

    #[test]
    #[should_panic(expected = "out must be")]
    fn into_shape_mismatch_rejected() {
        let a = arange(2, 3);
        let b = arange(3, 2);
        let mut out = Tensor::zeros([2, 3]);
        matmul_into(&a, &b, &mut out);
    }

    #[test]
    fn psum_tiles_sum_to_product() {
        let a = arange(3, 10);
        let b = arange(10, 4);
        let full = matmul(&a, &b);
        for k_tile in [1, 2, 3, 4, 10, 16] {
            let tiles = matmul_psum_tiles(&a, &b, k_tile);
            assert_eq!(tiles.len(), 10usize.div_ceil(k_tile));
            let mut acc = Tensor::zeros([3, 4]);
            for t in &tiles {
                acc = &acc + t;
            }
            for (x, y) in acc.data().iter().zip(full.data()) {
                assert!((x - y).abs() < 1e-3, "k_tile={k_tile}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn tiled_fold_default_is_matmul() {
        let a = arange(2, 8);
        let b = arange(8, 3);
        let folded = matmul_tiled_fold(&a, &b, 3, |_, run, tile| {
            *run = &*run + tile;
        });
        let full = matmul(&a, &b);
        for (x, y) in folded.data().iter().zip(full.data()) {
            assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn batched() {
        let a = Tensor::from_vec((0..2 * 2 * 3).map(|x| x as f32).collect(), [2, 2, 3]);
        let b = Tensor::from_vec((0..2 * 3 * 2).map(|x| x as f32 * 0.5).collect(), [2, 3, 2]);
        let c = batched_matmul(&a, &b);
        assert_eq!(c.dims(), &[2, 2, 2]);
        // Check one element by hand: batch 1, row 0, col 0.
        // a[1,0,:] = [6,7,8]; b[1,:,0] = [3,4,5] (×0.5 applied already in data)
        let expect = 6.0 * 3.0 + 7.0 * 4.0 + 8.0 * 5.0;
        assert!((c.at(&[1, 0, 0]) - expect).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dim_mismatch() {
        matmul(&Tensor::zeros([2, 3]), &Tensor::zeros([4, 2]));
    }
}
