//! Matrix multiplication kernels, including the K-tiled variant that exposes
//! partial-sum (PSUM) tiles — the integration point for APSQ.

use crate::tensor::Tensor;

/// Multiplies `a` (`[M, K]`) by `b` (`[K, N]`) producing `[M, N]`.
///
/// The kernel uses the cache-friendly `i-k-j` loop order over row-major
/// storage, which LLVM auto-vectorizes.
///
/// # Panics
///
/// Panics if either operand is not rank-2 or the inner dimensions disagree.
///
/// # Examples
///
/// ```
/// use apsq_tensor::{matmul, Tensor};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
/// let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2]);
/// assert_eq!(matmul(&a, &i), a);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k, n) = check_matmul_dims(a, b);
    let mut out = vec![0.0f32; m * n];
    matmul_into(a.data(), b.data(), &mut out, m, k, n);
    Tensor::from_vec(out, [m, n])
}

/// Multiplies `a` (`[M, K]`) by the transpose of `b` (`[N, K]`), producing
/// `[M, N]` without materializing the transpose.
///
/// This is the common backward-pass primitive (`dX = dY · Wᵀ`).
///
/// # Panics
///
/// Panics if either operand is not rank-2 or the K dimensions disagree.
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul_bt: `a` must be rank-2");
    assert_eq!(b.rank(), 2, "matmul_bt: `b` must be rank-2");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (n, kb) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, kb, "matmul_bt: inner dimensions {k} vs {kb} disagree");
    let (ad, bd) = (a.data(), b.data());
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (x, y) in arow.iter().zip(brow.iter()) {
                acc += x * y;
            }
            *o = acc;
        }
    }
    Tensor::from_vec(out, [m, n])
}

/// Multiplies the transpose of `a` (`[K, M]`) by `b` (`[K, N]`), producing
/// `[M, N]` without materializing the transpose.
///
/// This is the weight-gradient primitive (`dW = Xᵀ · dY`).
///
/// # Panics
///
/// Panics if either operand is not rank-2 or the K dimensions disagree.
pub fn matmul_at(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul_at: `a` must be rank-2");
    assert_eq!(b.rank(), 2, "matmul_at: `b` must be rank-2");
    let (k, m) = (a.dims()[0], a.dims()[1]);
    let (kb, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, kb, "matmul_at: inner dimensions {k} vs {kb} disagree");
    let (ad, bd) = (a.data(), b.data());
    let mut out = vec![0.0f32; m * n];
    for l in 0..k {
        let arow = &ad[l * m..(l + 1) * m];
        let brow = &bd[l * n..(l + 1) * n];
        for (i, &aval) in arow.iter().enumerate() {
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bval) in orow.iter_mut().zip(brow.iter()) {
                *o += aval * bval;
            }
        }
    }
    Tensor::from_vec(out, [m, n])
}

/// Batched matmul: `[B, M, K] × [B, K, N] → [B, M, N]`.
///
/// # Panics
///
/// Panics if operands are not rank-3 or batch/inner dims disagree.
pub fn batched_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 3, "batched_matmul: `a` must be rank-3");
    assert_eq!(b.rank(), 3, "batched_matmul: `b` must be rank-3");
    let (ba, m, k) = (a.dims()[0], a.dims()[1], a.dims()[2]);
    let (bb, kb, n) = (b.dims()[0], b.dims()[1], b.dims()[2]);
    assert_eq!(ba, bb, "batched_matmul: batch sizes {ba} vs {bb} disagree");
    assert_eq!(k, kb, "batched_matmul: inner dims {k} vs {kb} disagree");
    let mut out = vec![0.0f32; ba * m * n];
    for batch in 0..ba {
        matmul_into(
            &a.data()[batch * m * k..(batch + 1) * m * k],
            &b.data()[batch * k * n..(batch + 1) * k * n],
            &mut out[batch * m * n..(batch + 1) * m * n],
            m,
            k,
            n,
        );
    }
    Tensor::from_vec(out, [ba, m, n])
}

/// Splits the reduction axis of `a · b` into `ceil(K / k_tile)` tiles and
/// returns the sequence of partial-sum matrices `Tp_i` (each `[M, N]`).
///
/// The full product is exactly `Σ_i Tp_i` (eq 8 of the paper). This is how
/// both the QAT path and the hardware simulators obtain realistic PSUM tile
/// streams: tile `i` covers input-channel columns `i·k_tile .. (i+1)·k_tile`.
///
/// # Panics
///
/// Panics if operands are not rank-2, inner dims disagree, or `k_tile == 0`.
pub fn matmul_psum_tiles(a: &Tensor, b: &Tensor, k_tile: usize) -> Vec<Tensor> {
    assert!(k_tile > 0, "k_tile must be positive");
    let (m, k, n) = check_matmul_dims(a, b);
    let np = k.div_ceil(k_tile);
    let mut tiles = Vec::with_capacity(np);
    for t in 0..np {
        let k0 = t * k_tile;
        let k1 = usize::min(k0 + k_tile, k);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for l in k0..k1 {
                let aval = a.data()[i * k + l];
                let brow = &b.data()[l * n..(l + 1) * n];
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *o += aval * bv;
                }
            }
        }
        tiles.push(Tensor::from_vec(out, [m, n]));
    }
    tiles
}

/// Computes `a · b` by folding the K-tiled PSUM stream through `fold`.
///
/// `fold(step, running, tile)` is called once per PSUM tile with the running
/// accumulation so far (`running` initially zero). The default fold —
/// `running += tile` — reproduces plain matmul; a fold that requantizes
/// `running` after adding implements APSQ in the fake-quant (float) domain.
///
/// # Panics
///
/// Panics if operands are not rank-2, inner dims disagree, or `k_tile == 0`.
pub fn matmul_tiled_fold(
    a: &Tensor,
    b: &Tensor,
    k_tile: usize,
    mut fold: impl FnMut(usize, &mut Tensor, &Tensor),
) -> Tensor {
    let (m, _, n) = check_matmul_dims(a, b);
    let mut running = Tensor::zeros([m, n]);
    for (step, tile) in matmul_psum_tiles(a, b, k_tile).into_iter().enumerate() {
        fold(step, &mut running, &tile);
    }
    running
}

fn check_matmul_dims(a: &Tensor, b: &Tensor) -> (usize, usize, usize) {
    assert_eq!(a.rank(), 2, "matmul: `a` must be rank-2, got {}", a.shape());
    assert_eq!(b.rank(), 2, "matmul: `b` must be rank-2, got {}", b.shape());
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (kb, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, kb, "matmul: inner dimensions {k} vs {kb} disagree");
    (m, k, n)
}

fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (l, &aval) in arow.iter().enumerate() {
            if aval == 0.0 {
                continue;
            }
            let brow = &b[l * n..(l + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += aval * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros([m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for l in 0..k {
                    acc += a.at(&[i, l]) * b.at(&[l, j]);
                }
                out.set(&[i, j], acc);
            }
        }
        out
    }

    fn arange(m: usize, n: usize) -> Tensor {
        Tensor::from_vec(
            (0..m * n).map(|x| (x as f32) * 0.25 - 3.0).collect(),
            [m, n],
        )
    }

    #[test]
    fn matches_naive() {
        let a = arange(4, 6);
        let b = arange(6, 5);
        let c = matmul(&a, &b);
        let r = naive(&a, &b);
        for (x, y) in c.data().iter().zip(r.data()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn bt_and_at_match() {
        let a = arange(3, 4);
        let b = arange(4, 5);
        let c = matmul(&a, &b);
        let c_bt = matmul_bt(&a, &b.transpose());
        let c_at = matmul_at(&a.transpose(), &b);
        for (x, y) in c.data().iter().zip(c_bt.data()) {
            assert!((x - y).abs() < 1e-4);
        }
        for (x, y) in c.data().iter().zip(c_at.data()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn psum_tiles_sum_to_product() {
        let a = arange(3, 10);
        let b = arange(10, 4);
        let full = matmul(&a, &b);
        for k_tile in [1, 2, 3, 4, 10, 16] {
            let tiles = matmul_psum_tiles(&a, &b, k_tile);
            assert_eq!(tiles.len(), 10usize.div_ceil(k_tile));
            let mut acc = Tensor::zeros([3, 4]);
            for t in &tiles {
                acc = &acc + t;
            }
            for (x, y) in acc.data().iter().zip(full.data()) {
                assert!((x - y).abs() < 1e-3, "k_tile={k_tile}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn tiled_fold_default_is_matmul() {
        let a = arange(2, 8);
        let b = arange(8, 3);
        let folded = matmul_tiled_fold(&a, &b, 3, |_, run, tile| {
            *run = &*run + tile;
        });
        let full = matmul(&a, &b);
        for (x, y) in folded.data().iter().zip(full.data()) {
            assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn batched() {
        let a = Tensor::from_vec((0..2 * 2 * 3).map(|x| x as f32).collect(), [2, 2, 3]);
        let b = Tensor::from_vec((0..2 * 3 * 2).map(|x| x as f32 * 0.5).collect(), [2, 3, 2]);
        let c = batched_matmul(&a, &b);
        assert_eq!(c.dims(), &[2, 2, 2]);
        // Check one element by hand: batch 1, row 0, col 0.
        // a[1,0,:] = [6,7,8]; b[1,:,0] = [3,4,5] (×0.5 applied already in data)
        let expect = 6.0 * 3.0 + 7.0 * 4.0 + 8.0 * 5.0;
        assert!((c.at(&[1, 0, 0]) - expect).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dim_mismatch() {
        matmul(&Tensor::zeros([2, 3]), &Tensor::zeros([4, 2]));
    }
}
