//! Property-based tests for the tensor substrate.

use apsq_tensor::{
    int8_matmul, int8_matmul_psum_tiles, matmul, matmul_at, matmul_bt, matmul_psum_tiles,
    softmax_rows, ExecEngine, Int32Tensor, Int8Tensor, Tensor,
};
use proptest::prelude::*;
use proptest::strategy::ValueTree;

fn small_dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..8, 1usize..12, 1usize..8)
}

fn tensor_strategy(m: usize, n: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-4.0f32..4.0, m * n).prop_map(move |v| Tensor::from_vec(v, [m, n]))
}

fn int8_strategy(m: usize, n: usize) -> impl Strategy<Value = Int8Tensor> {
    proptest::collection::vec(any::<i8>(), m * n).prop_map(move |v| Int8Tensor::from_vec(v, [m, n]))
}

/// Deterministic seed-mixed i8 fill, so proptest-drawn seeds really vary
/// the operand data across cases.
fn seeded_i8(m: usize, n: usize, seed: u32) -> Int8Tensor {
    Int8Tensor::from_vec(
        (0..m * n)
            .map(|x| ((x as u32).wrapping_mul(37).wrapping_add(seed) % 255) as i8)
            .collect(),
        [m, n],
    )
}

fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let n = b.dims()[1];
    let mut out = Tensor::zeros([m, n]);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for l in 0..k {
                acc += (a.at(&[i, l]) as f64) * (b.at(&[l, j]) as f64);
            }
            out.set(&[i, j], acc as f32);
        }
    }
    out
}

proptest! {
    #[test]
    fn matmul_matches_naive(((m, k, n), seed) in (small_dims(), any::<u64>())) {
        let _ = seed;
        let strat = (tensor_strategy(m, k), tensor_strategy(k, n));
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let (a, b) = strat.new_tree(&mut runner).unwrap().current();
        let fast = matmul(&a, &b);
        let slow = naive_matmul(&a, &b);
        for (x, y) in fast.data().iter().zip(slow.data()) {
            prop_assert!((x - y).abs() <= 1e-3 * (1.0 + y.abs()));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn psum_tiles_partition_reduction(
        (m, k, n) in small_dims(),
        k_tile in 1usize..16,
        vals in proptest::collection::vec(-2.0f32..2.0, 8 * 12 + 12 * 8),
    ) {
        let a = Tensor::from_vec(vals[..m * k].to_vec(), [m, k]);
        let b = Tensor::from_vec(vals[vals.len() - k * n..].to_vec(), [k, n]);
        let tiles = matmul_psum_tiles(&a, &b, k_tile);
        prop_assert_eq!(tiles.len(), k.div_ceil(k_tile));
        let mut acc = Tensor::zeros([m, n]);
        for t in &tiles {
            acc = &acc + t;
        }
        let full = matmul(&a, &b);
        for (x, y) in acc.data().iter().zip(full.data()) {
            prop_assert!((x - y).abs() <= 1e-3 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn transpose_variants_agree(
        (m, k, n) in small_dims(),
        vals in proptest::collection::vec(-2.0f32..2.0, 8 * 12 + 12 * 8),
    ) {
        let a = Tensor::from_vec(vals[..m * k].to_vec(), [m, k]);
        let b = Tensor::from_vec(vals[vals.len() - k * n..].to_vec(), [k, n]);
        let c = matmul(&a, &b);
        let c_bt = matmul_bt(&a, &b.transpose());
        let c_at = matmul_at(&a.transpose(), &b);
        for (x, y) in c.data().iter().zip(c_bt.data()) {
            prop_assert!((x - y).abs() <= 1e-3 * (1.0 + y.abs()));
        }
        for (x, y) in c.data().iter().zip(c_at.data()) {
            prop_assert!((x - y).abs() <= 1e-3 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn softmax_rows_is_distribution(
        m in 1usize..6,
        n in 1usize..10,
        vals in proptest::collection::vec(-30.0f32..30.0, 60),
    ) {
        let x = Tensor::from_vec(vals[..m * n].to_vec(), [m, n]);
        let y = softmax_rows(&x);
        for i in 0..m {
            let row = &y.data()[i * n..(i + 1) * n];
            let s: f32 = row.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The engine's parallel integer matmul is bit-exact against the serial
    /// reference for every thread count, at sizes large enough to really
    /// cross the engine's spawn threshold.
    #[test]
    fn engine_parallel_int8_matmul_bit_exact(
        (m, extra_k, n) in (9usize..70, 0usize..80, 5usize..40),
        threads in 2usize..9,
        seed in any::<u16>(),
    ) {
        let k = 64 + extra_k;
        let a = seeded_i8(m, k, seed as u32);
        let b = seeded_i8(k, n, seed as u32 ^ 0x9e37);
        let serial = int8_matmul(&a, &b);
        let parallel = ExecEngine::with_threads(threads)
            .with_spawn_threshold(0)
            .int8_matmul(&a, &b);
        prop_assert_eq!(parallel, serial);
    }

    /// Float results are also bit-identical across thread counts (the
    /// engine's per-element reduction order never depends on the
    /// partition).
    #[test]
    fn engine_parallel_f32_matmul_bit_exact(
        (m, extra_k, n) in (9usize..70, 0usize..80, 5usize..40),
        threads in 2usize..9,
        vals in proptest::collection::vec(-3.0f32..3.0, 70 * 144),
    ) {
        let k = 64 + extra_k;
        let a = Tensor::from_vec(vals[..m * k].to_vec(), [m, k]);
        let b = Tensor::from_vec(vals[vals.len() - k * n..].to_vec(), [k, n]);
        let serial = ExecEngine::serial().matmul(&a, &b);
        let parallel = ExecEngine::with_threads(threads)
            .with_spawn_threshold(0)
            .matmul(&a, &b);
        prop_assert_eq!(parallel, serial);
    }

    /// The streaming K-tile API partitions the exact integer reduction:
    /// folding the streamed tiles with checked adds reproduces the full
    /// product for any tile size and thread count.
    #[test]
    fn engine_int8_k_tile_stream_partitions_reduction(
        (m, k, n) in small_dims(),
        k_tile in 1usize..16,
        threads in 1usize..5,
        seed in any::<u16>(),
    ) {
        let a = seeded_i8(m, k, seed as u32);
        let b = seeded_i8(k, n, seed as u32 ^ 0x51ed);
        let exact = int8_matmul(&a, &b);
        let mut acc = Int32Tensor::zeros([m, n]);
        let mut steps = 0usize;
        ExecEngine::with_threads(threads)
            .with_spawn_threshold(0)
            .int8_for_each_k_tile(&a, &b, k_tile, |step, tile| {
            prop_assert_eq!(step, steps);
            acc = acc.checked_add(tile).expect("no overflow at these depths");
            steps += 1;
        });
        prop_assert_eq!(steps, k.div_ceil(k_tile));
        prop_assert_eq!(acc, exact);
    }

    /// The transposed-weight int8 GEMM and its K-tile stream agree with
    /// the `[K, N]`-layout path exactly, for every thread count.
    #[test]
    fn int8_bt_matches_kn_layout(
        (m, k, n) in small_dims(),
        k_tile in 1usize..16,
        threads in 1usize..5,
        seed in any::<u16>(),
    ) {
        let a = seeded_i8(m, k, seed as u32);
        let b = seeded_i8(k, n, seed as u32 ^ 0x77aa);
        // bᵀ stored [N, K].
        let mut bt = vec![0i8; n * k];
        for l in 0..k {
            for j in 0..n {
                bt[j * k + l] = b.data()[l * n + j];
            }
        }
        let bt = Int8Tensor::from_vec(bt, [n, k]);
        let eng = ExecEngine::with_threads(threads).with_spawn_threshold(0);
        let want = int8_matmul(&a, &b);
        prop_assert_eq!(&eng.int8_matmul_bt(&a, &bt), &want);
        let tiles = int8_matmul_psum_tiles(&a, &b, k_tile);
        let mut steps = 0usize;
        eng.int8_bt_for_each_k_tile(&a, &bt, k_tile, |step, tile| {
            prop_assert_eq!(tile, &tiles[step]);
            steps += 1;
        });
        prop_assert_eq!(steps, k.div_ceil(k_tile));
        // Accumulating entry point doubles the exact result.
        let mut acc = want.clone();
        eng.int8_matmul_acc(&a, &b, &mut acc);
        for (x, y) in acc.data().iter().zip(want.data()) {
            prop_assert_eq!(*x, 2 * y);
        }
    }

    /// Quantize→dequantize round trips stay within half a step for
    /// in-range values, and the reported relative error is consistent.
    #[test]
    fn int8_roundtrip_error_bounded(
        exp in -6i32..7,
        n in 1usize..64,
        seed in any::<u16>(),
    ) {
        let scale = (exp as f32).exp2();
        let vals: Vec<f32> = (0..n)
            .map(|i| {
                let r = ((i as u32).wrapping_mul(2654435761).wrapping_add(seed as u32) % 2000)
                    as f32 / 1000.0 - 1.0;
                r * 100.0 * scale // keep within the i8 code range
            })
            .collect();
        let x = Tensor::from_vec(vals, [n]);
        let back = Int8Tensor::quantize(&x, scale).dequantize(scale);
        for (a, b) in x.data().iter().zip(back.data()) {
            prop_assert!((a - b).abs() <= scale / 2.0 + 1e-6, "{a} vs {b} at scale {scale}");
        }
        let err = Int8Tensor::roundtrip_rel_error(&x, scale);
        prop_assert!((0.0..=1.0).contains(&err));
    }

    #[test]
    fn int8_psum_tiles_exact_partition(
        (m, k, n) in small_dims(),
        k_tile in 1usize..16,
        seed in any::<u16>(),
    ) {
        let _ = seed;
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let a = int8_strategy(m, k).new_tree(&mut runner).unwrap().current();
        let b = int8_strategy(k, n).new_tree(&mut runner).unwrap().current();
        let exact = int8_matmul(&a, &b);
        let tiles = int8_matmul_psum_tiles(&a, &b, k_tile);
        let mut acc = Int32Tensor::zeros([m, n]);
        for t in &tiles {
            acc = acc.checked_add(t).expect("no overflow at these depths");
        }
        prop_assert_eq!(acc, exact);
    }
}
