//! Property-based SIMD⇔scalar bit-identity tests.
//!
//! Every kernel backend (`Scalar`, `Sse2`, `Avx2` where the CPU supports
//! them) must produce **bit-identical** results for the same inputs: the
//! i8 path is exact integer arithmetic in any association, and the f32
//! path pins one per-element lane-reduction order that all backends
//! implement. These properties force each backend through
//! [`ExecEngine::with_backend`] and compare against the scalar reference
//! across random shapes (including ragged MR/NR/LANES tails), K ranges,
//! leading dimensions, and thread counts.

use apsq_tensor::{ExecEngine, Int32Tensor, Int8Tensor, KernelBackend, Tensor};
use proptest::prelude::*;

/// Deterministic seed-mixed i8 fill, so proptest-drawn seeds really vary
/// the operand data across cases.
fn seeded_i8(m: usize, n: usize, seed: u32) -> Int8Tensor {
    Int8Tensor::from_vec(
        (0..m * n)
            .map(|x| ((x as u32).wrapping_mul(37).wrapping_add(seed) % 255) as i8)
            .collect(),
        [m, n],
    )
}

/// Deterministic f32 fill with awkward magnitudes (rounding-sensitive).
fn seeded_f32(m: usize, n: usize, seed: u32) -> Tensor {
    Tensor::from_vec(
        (0..m * n)
            .map(|x| {
                let h = (x as u32).wrapping_mul(2654435761).wrapping_add(seed);
                (h % 4001) as f32 / 400.0 - 5.0
            })
            .collect(),
        [m, n],
    )
}

/// Shapes that straddle the register-tile edges: MR = 4 rows, NR = 8
/// columns, 8 f32 dot lanes. Small offsets around multiples of each
/// exercise every ragged-tail path.
fn ragged_dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (
        prop_oneof![1usize..5, 7usize..10, 15usize..18],
        (0usize..4)
            .prop_map(|e| 8 * e + 1)
            .prop_flat_map(|base| base..base + 7),
        prop_oneof![1usize..9, 15usize..19, 63usize..67, 255usize..261],
    )
}

fn scalar_engine(threads: usize) -> ExecEngine {
    ExecEngine::with_threads(threads)
        .with_spawn_threshold(0)
        .with_backend(KernelBackend::Scalar)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All three f32 kernels (plain, bᵀ, aᵀ) are bit-identical on every
    /// supported backend, at ragged shapes and across thread counts.
    #[test]
    fn f32_kernels_bit_identical_across_backends(
        (m, k, n) in ragged_dims(),
        threads in 1usize..5,
        seed in any::<u16>(),
    ) {
        let a = seeded_f32(m, k, seed as u32);
        let b = seeded_f32(k, n, seed as u32 ^ 0x9e37);
        let reference = scalar_engine(threads);
        let want = reference.matmul(&a, &b);
        let want_bt = reference.matmul_bt(&a, &b.transpose());
        let want_at = reference.matmul_at(&a.transpose(), &b);
        for bk in KernelBackend::supported() {
            let eng = ExecEngine::with_threads(threads)
                .with_spawn_threshold(0)
                .with_backend(bk);
            prop_assert_eq!(&eng.matmul(&a, &b), &want, "matmul on {}", bk);
            prop_assert_eq!(&eng.matmul_bt(&a, &b.transpose()), &want_bt, "bt on {}", bk);
            prop_assert_eq!(&eng.matmul_at(&a.transpose(), &b), &want_at, "at on {}", bk);
        }
    }

    /// The i8 GEMMs ([K, N] and transposed-weight layouts) are exact on
    /// every backend — any association of integer adds gives one answer.
    #[test]
    fn i8_kernels_bit_identical_across_backends(
        (m, k, n) in ragged_dims(),
        threads in 1usize..5,
        seed in any::<u16>(),
    ) {
        let a = seeded_i8(m, k, seed as u32);
        let b = seeded_i8(k, n, seed as u32 ^ 0x51ed);
        // bᵀ stored [N, K].
        let mut bt = vec![0i8; n * k];
        for l in 0..k {
            for j in 0..n {
                bt[j * k + l] = b.data()[l * n + j];
            }
        }
        let bt = Int8Tensor::from_vec(bt, [n, k]);
        let reference = scalar_engine(threads);
        let want = reference.int8_matmul(&a, &b);
        for bk in KernelBackend::supported() {
            let eng = ExecEngine::with_threads(threads)
                .with_spawn_threshold(0)
                .with_backend(bk);
            prop_assert_eq!(&eng.int8_matmul(&a, &b), &want, "i8 on {}", bk);
            prop_assert_eq!(&eng.int8_matmul_bt(&a, &bt), &want, "i8 bt on {}", bk);
        }
    }

    /// Streaming K-tiles hand out bit-identical partial sums on every
    /// backend for every K partition — the property the APSQ fold relies
    /// on when it quantizes PSUM tiles mid-reduction.
    #[test]
    fn k_tile_streams_bit_identical_across_backends(
        (m, k, n) in ragged_dims(),
        k_tile in 1usize..33,
        seed in any::<u16>(),
    ) {
        let a = seeded_i8(m, k, seed as u32);
        let b = seeded_i8(k, n, seed as u32 ^ 0x77aa);
        let af = seeded_f32(m, k, seed as u32 ^ 0x0f0f);
        let bf = seeded_f32(k, n, seed as u32 ^ 0xf0f0);
        let reference = scalar_engine(1);
        let want_i8 = reference.int8_matmul_psum_tiles(&a, &b, k_tile);
        let want_f32 = reference.matmul_psum_tiles(&af, &bf, k_tile);
        for bk in KernelBackend::supported() {
            let eng = ExecEngine::serial().with_backend(bk);
            prop_assert_eq!(&eng.int8_matmul_psum_tiles(&a, &b, k_tile), &want_i8,
                "i8 tiles on {}", bk);
            prop_assert_eq!(&eng.matmul_psum_tiles(&af, &bf, k_tile), &want_f32,
                "f32 tiles on {}", bk);
        }
    }

    /// The raw ranged block GEMM agrees bit-for-bit across backends with
    /// arbitrary leading dimensions (sub-blocks of larger buffers) and
    /// partial K ranges.
    #[test]
    fn gemm_block_bit_identical_with_leading_dims(
        (m, k, n) in ragged_dims(),
        (pada, padb, pado) in (0usize..5, 0usize..5, 0usize..5),
        (kcut0, kcut1) in (0usize..8, 0usize..8),
        seed in any::<u16>(),
    ) {
        let (lda, ldb, ldo) = (k + pada, n + padb, n + pado);
        let k0 = kcut0.min(k.saturating_sub(1));
        let k1 = (k - kcut1.min(k - k0 - 1)).max(k0 + 1);
        let a = seeded_i8(m, lda, seed as u32);
        let b = seeded_i8(k, ldb, seed as u32 ^ 0x1234);
        let mut want = vec![0i32; m * ldo];
        scalar_engine(1).int8_gemm_block(
            a.data(), lda, b.data(), ldb, &mut want, ldo, m, n, k0, k1);
        for bk in KernelBackend::supported() {
            let mut got = vec![0i32; m * ldo];
            ExecEngine::serial().with_backend(bk).int8_gemm_block(
                a.data(), lda, b.data(), ldb, &mut got, ldo, m, n, k0, k1);
            prop_assert_eq!(&got, &want, "block gemm on {}", bk);
        }
    }

    /// Batched attention-shaped products (the serve decode hot path) are
    /// bit-identical across backends too.
    #[test]
    fn batched_i8_bit_identical_across_backends(
        (h, m, k, n) in (1usize..4, 1usize..6, 1usize..20, 1usize..10),
        seed in any::<u16>(),
    ) {
        let a = Int8Tensor::from_vec(
            seeded_i8(h * m, k, seed as u32).data().to_vec(), [h, m, k]);
        let b = Int8Tensor::from_vec(
            seeded_i8(h * n, k, seed as u32 ^ 0xabcd).data().to_vec(), [h, n, k]);
        let want = scalar_engine(1).int8_batched_matmul_bt(&a, &b);
        for bk in KernelBackend::supported() {
            let got = ExecEngine::serial().with_backend(bk).int8_batched_matmul_bt(&a, &b);
            prop_assert_eq!(&got, &want, "batched bt on {}", bk);
        }
    }
}

/// The env knob (`APSQ_KERNEL_BACKEND`) names round-trip through
/// `from_name`, and an engine reports whatever backend it was forced to.
#[test]
fn forced_backend_is_reported() {
    for bk in KernelBackend::supported() {
        let eng = ExecEngine::serial().with_backend(bk);
        assert_eq!(eng.backend(), bk);
        assert_eq!(KernelBackend::from_name(bk.name()), Some(bk));
    }
    let _ = Int32Tensor::zeros([1, 1]); // keep the import honest on non-x86
}
