//! Accelerator architecture parameters (paper Fig 2 and Section IV-A).

/// Parallelism and buffer configuration of the analytical accelerator.
///
/// The MAC array is organized by `Po` (output-pixel parallelism), `Pci`
/// (input-channel parallelism — one PSUM tile accumulates `Pci` input
/// channels), and `Pco` (output-channel parallelism).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AcceleratorConfig {
    /// Output-pixel (token) parallelism `Po`.
    pub po: usize,
    /// Input-channel parallelism `Pci`.
    pub pci: usize,
    /// Output-channel parallelism `Pco`.
    pub pco: usize,
    /// Ifmap buffer capacity `Bi` in bytes.
    pub ifmap_buffer_bytes: usize,
    /// Ofmap/PSUM buffer capacity `Bo` in bytes.
    pub ofmap_buffer_bytes: usize,
    /// Weight buffer capacity `Bw` in bytes.
    pub weight_buffer_bytes: usize,
}

impl AcceleratorConfig {
    /// The paper's transformer configuration (Section IV-A): `Po = 16`,
    /// `Pci = 8`, `Pco = 8`, 256 KB ifmap + 256 KB ofmap + 128 KB weight
    /// buffers.
    pub fn transformer() -> Self {
        AcceleratorConfig {
            po: 16,
            pci: 8,
            pco: 8,
            ifmap_buffer_bytes: 256 * 1024,
            ofmap_buffer_bytes: 256 * 1024,
            weight_buffer_bytes: 128 * 1024,
        }
    }

    /// The paper's LLM decode configuration: `Po = 1`, `Pci = 32`,
    /// `Pco = 32` (the decoder input is a single-token vector), same
    /// buffers.
    pub fn llm() -> Self {
        AcceleratorConfig {
            po: 1,
            pci: 32,
            pco: 32,
            ..Self::transformer()
        }
    }

    /// Number of MAC units (`Po · Pci · Pco`).
    pub fn mac_units(&self) -> usize {
        self.po * self.pci * self.pco
    }

    /// Validates that every parallelism and buffer is positive.
    ///
    /// # Panics
    ///
    /// Panics on a zero field.
    pub fn validate(&self) {
        assert!(
            self.po > 0
                && self.pci > 0
                && self.pco > 0
                && self.ifmap_buffer_bytes > 0
                && self.ofmap_buffer_bytes > 0
                && self.weight_buffer_bytes > 0,
            "accelerator config has a zero field: {self:?}"
        );
    }
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        Self::transformer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs() {
        let t = AcceleratorConfig::transformer();
        assert_eq!(t.mac_units(), 16 * 8 * 8);
        assert_eq!(t.ofmap_buffer_bytes, 262144);

        let l = AcceleratorConfig::llm();
        assert_eq!(l.mac_units(), 32 * 32);
        assert_eq!(l.po, 1);
    }

    #[test]
    #[should_panic(expected = "zero field")]
    fn zero_field_rejected() {
        AcceleratorConfig {
            po: 0,
            ..AcceleratorConfig::transformer()
        }
        .validate();
    }
}
