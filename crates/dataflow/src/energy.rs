//! Energy costs per access (eq 1) and the per-tensor energy breakdown.
//!
//! Per-access constants follow Horowitz, ISSCC 2014 (the paper's ref [21]):
//! a DDR3 DRAM access costs on the order of 1.3–2.6 nJ per 64-bit word
//! (≈ 160 pJ/byte), large on-chip SRAM costs a few pJ/byte, a register file
//! is an order of magnitude cheaper still, and an INT8 MAC with INT32
//! accumulate is ≈ 0.2–0.3 pJ. Energies in this model are reported in pJ;
//! every experiment in the paper normalizes to a baseline, so only the
//! *ratios* matter.

use crate::access::AccessCounts;

/// Per-access energy constants.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyTable {
    /// DRAM access energy, pJ per byte.
    pub dram_pj_per_byte: f64,
    /// On-chip SRAM (buffer) access energy, pJ per byte.
    pub sram_pj_per_byte: f64,
    /// PE register-file access energy, pJ per byte.
    pub reg_pj_per_byte: f64,
    /// One INT8×INT8 MAC with INT32 accumulate, pJ.
    pub mac_pj: f64,
}

impl EnergyTable {
    /// Default 28 nm-class constants in the Horowitz ranges (see module
    /// docs). These reproduce the paper's Fig 1 energy shares — e.g. PSUMs
    /// at 69% of a WS BERT-Base layer stack with INT32 PSUMs.
    pub fn default_28nm() -> Self {
        EnergyTable {
            dram_pj_per_byte: 160.0,
            sram_pj_per_byte: 6.0,
            reg_pj_per_byte: 0.3,
            mac_pj: 0.28,
        }
    }

    /// Validates that all entries are positive and finite.
    ///
    /// # Panics
    ///
    /// Panics otherwise.
    pub fn validate(&self) {
        let ok = |v: f64| v.is_finite() && v > 0.0;
        assert!(
            ok(self.dram_pj_per_byte)
                && ok(self.sram_pj_per_byte)
                && ok(self.reg_pj_per_byte)
                && ok(self.mac_pj),
            "energy table entries must be positive and finite: {self:?}"
        );
    }
}

impl Default for EnergyTable {
    fn default() -> Self {
        Self::default_28nm()
    }
}

/// Energy attributed to each tensor/op category of Fig 1, in pJ.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Ifmap movement energy.
    pub ifmap: f64,
    /// Weight movement energy.
    pub weight: f64,
    /// PSUM movement energy (SRAM + DRAM + register accumulation).
    pub psum: f64,
    /// Ofmap movement energy.
    pub ofmap: f64,
    /// MAC operation energy (Fig 1's "op").
    pub op: f64,
}

impl EnergyBreakdown {
    /// Total energy in pJ (eq 1).
    pub fn total(&self) -> f64 {
        self.ifmap + self.weight + self.psum + self.ofmap + self.op
    }

    /// PSUM share of the total, in `[0, 1]`.
    pub fn psum_share(&self) -> f64 {
        if self.total() == 0.0 {
            0.0
        } else {
            self.psum / self.total()
        }
    }

    /// Adds another breakdown in place.
    pub fn accumulate(&mut self, other: &EnergyBreakdown) {
        self.ifmap += other.ifmap;
        self.weight += other.weight;
        self.psum += other.psum;
        self.ofmap += other.ofmap;
        self.op += other.op;
    }
}

/// Converts an access inventory into the Fig 1 energy breakdown.
pub fn energy_breakdown(counts: &AccessCounts, table: &EnergyTable) -> EnergyBreakdown {
    table.validate();
    let move_energy = |t: &crate::access::TensorAccess| {
        t.sram_bytes * table.sram_pj_per_byte + t.dram_bytes * table.dram_pj_per_byte
    };
    EnergyBreakdown {
        ifmap: move_energy(&counts.ifmap),
        weight: move_energy(&counts.weight),
        psum: move_energy(&counts.psum) + counts.psum_reg_bytes * table.reg_pj_per_byte,
        ofmap: move_energy(&counts.ofmap),
        op: counts.macs * table.mac_pj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::TensorAccess;

    #[test]
    fn breakdown_totals() {
        let counts = AccessCounts {
            ifmap: TensorAccess {
                sram_bytes: 100.0,
                dram_bytes: 1.0,
            },
            weight: TensorAccess {
                sram_bytes: 50.0,
                dram_bytes: 2.0,
            },
            psum: TensorAccess {
                sram_bytes: 1000.0,
                dram_bytes: 0.0,
            },
            ofmap: TensorAccess {
                sram_bytes: 10.0,
                dram_bytes: 1.0,
            },
            psum_reg_bytes: 0.0,
            macs: 1000.0,
        };
        let t = EnergyTable {
            dram_pj_per_byte: 100.0,
            sram_pj_per_byte: 1.0,
            reg_pj_per_byte: 0.1,
            mac_pj: 0.25,
        };
        let e = energy_breakdown(&counts, &t);
        assert_eq!(e.ifmap, 200.0);
        assert_eq!(e.weight, 250.0);
        assert_eq!(e.psum, 1000.0);
        assert_eq!(e.ofmap, 110.0);
        assert_eq!(e.op, 250.0);
        assert_eq!(e.total(), 1810.0);
        assert!((e.psum_share() - 1000.0 / 1810.0).abs() < 1e-12);
    }

    #[test]
    fn default_table_is_sane() {
        let t = EnergyTable::default_28nm();
        t.validate();
        // DRAM must dominate SRAM by at least an order of magnitude.
        assert!(t.dram_pj_per_byte / t.sram_pj_per_byte > 10.0);
        // Registers are cheaper than SRAM.
        assert!(t.reg_pj_per_byte < t.sram_pj_per_byte);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn bad_table_rejected() {
        EnergyTable {
            dram_pj_per_byte: -1.0,
            ..EnergyTable::default_28nm()
        }
        .validate();
    }
}
