//! PSUM-precision-aware analytical energy framework for DNN accelerators
//! (paper Section II-A, eqs 1–6).
//!
//! The framework models a tiled accelerator (MAC array `Po × Pci × Pco`,
//! on-chip ifmap/ofmap/weight SRAM buffers, off-chip DRAM) and counts, for
//! each layer and dataflow, how many times every byte of every tensor moves
//! at each memory level:
//!
//! ```text
//! E_total = N_d·E_dram + N_s·E_sram + N_m·E_mac                    (eq 1)
//! N_d/s  = Si·Nⁱ + Sw·Nʷ + β·So·Nᵖ + So·Nᵒ                         (eq 2)
//! ```
//!
//! The precision factor `β` is the ratio of PSUM precision to weight /
//! activation precision — 4 for the INT32 PSUMs of a W8A8 accelerator, 1
//! after APSQ compresses them to INT8. Grouped APSQ additionally multiplies
//! the PSUM buffer *working set* by `gs`, which is what re-introduces DRAM
//! spills at large group sizes on high-resolution models (Fig 6b).
//!
//! # Example
//!
//! ```
//! use apsq_dataflow::{
//!     normalized_energy, AcceleratorConfig, Dataflow, EnergyTable, LayerShape, PsumFormat,
//!     Workload,
//! };
//!
//! let w = Workload::new("ffn", vec![LayerShape::gemm("ffn1", 128, 768, 3072)]);
//! let r = normalized_energy(
//!     &w,
//!     &AcceleratorConfig::transformer(),
//!     Dataflow::WeightStationary,
//!     &PsumFormat::apsq_int8(1),
//!     &PsumFormat::int32_baseline(),
//!     &EnergyTable::default_28nm(),
//! );
//! assert!(r < 1.0); // APSQ saves energy under WS
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod access;
mod arch;
mod dataflow;
mod energy;
mod framework;
mod layer;
mod psum;
mod sweep;

pub use access::{access_counts, AccessCounts, TensorAccess};
pub use arch::AcceleratorConfig;
pub use dataflow::Dataflow;
pub use energy::{energy_breakdown, EnergyBreakdown, EnergyTable};
pub use framework::{normalized_energy, workload_access_counts, workload_energy, Workload};
pub use layer::LayerShape;
pub use psum::PsumFormat;
pub use sweep::{
    energy_hotspots, max_resident_group_size, residency_threshold_bytes, sweep_ofmap_buffer,
    BufferSweepPoint,
};
