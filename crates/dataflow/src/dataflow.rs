//! Dataflow taxonomy (paper Section I / II-A).

use std::fmt;

/// The stationary-operand dataflow of a DNN accelerator.
///
/// - **Input Stationary (IS)** keeps input tiles in PE registers and streams
///   weights; PSUMs live in the output buffer and are updated once per
///   input-channel tile.
/// - **Weight Stationary (WS)** keeps a `Pci × Pco` weight tile in the PE
///   array and streams input tiles; PSUMs for the whole output map are
///   buffered while accumulating over input channels.
/// - **Output Stationary (OS)** accumulates PSUMs in PE registers, so PSUM
///   precision never touches SRAM — at the cost of re-streaming inputs and
///   weights.
///
/// APSQ targets IS and WS, where PSUM precision drives buffer traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataflow {
    /// Input stationary.
    InputStationary,
    /// Weight stationary.
    WeightStationary,
    /// Output stationary.
    OutputStationary,
}

impl Dataflow {
    /// All three dataflows, in the paper's Fig 1 order.
    pub const ALL: [Dataflow; 3] = [
        Dataflow::InputStationary,
        Dataflow::WeightStationary,
        Dataflow::OutputStationary,
    ];

    /// Whether this dataflow stores PSUMs in on-chip SRAM (true for IS/WS).
    pub fn buffers_psums(self) -> bool {
        !matches!(self, Dataflow::OutputStationary)
    }

    /// The conventional short name ("IS", "WS", "OS").
    pub fn short_name(self) -> &'static str {
        match self {
            Dataflow::InputStationary => "IS",
            Dataflow::WeightStationary => "WS",
            Dataflow::OutputStationary => "OS",
        }
    }
}

impl fmt::Display for Dataflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(Dataflow::InputStationary.to_string(), "IS");
        assert_eq!(Dataflow::WeightStationary.to_string(), "WS");
        assert_eq!(Dataflow::OutputStationary.to_string(), "OS");
    }

    #[test]
    fn psum_buffering() {
        assert!(Dataflow::InputStationary.buffers_psums());
        assert!(Dataflow::WeightStationary.buffers_psums());
        assert!(!Dataflow::OutputStationary.buffers_psums());
    }
}
