//! Per-layer access-count models — the paper's equations (3)–(6) plus an
//! OS model derived from ref [16].
//!
//! All counts are *per-element access multiplicities* `N` multiplied out
//! into byte totals per eq (2):
//!
//! ```text
//! N_d/s = Si·N^i + Sw·N^w + β·So·N^p + So·N^o
//! ```
//!
//! Conventions (documented deviations are paper typos, see DESIGN.md):
//!
//! - "fits" means `working set ≤ capacity` (boundary-inclusive); this is
//!   required to reproduce Fig 6b, where Segformer-B0 at `gs = 2` still
//!   avoids spilling a 256 KB PSUM working set into DRAM.
//! - IS checks the **full** weight size `Sw` against `Bw` (eq 3); WS checks
//!   the **tile** input size `S̃i` against `Bi` (eq 5) — the asymmetry is
//!   in the paper and is what differentiates the Fig 1 energy shares.
//! - Input-pixel passes for IS use the flattened form
//!   `⌈Hi·Wi / Po⌉` (≡ `⌈Hi/Pih⌉·⌈Wi/Piw⌉` with `Piw = 1`).

use crate::arch::AcceleratorConfig;
use crate::dataflow::Dataflow;
use crate::layer::LayerShape;
use crate::psum::PsumFormat;

/// SRAM/DRAM byte traffic attributed to one tensor of a layer.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TensorAccess {
    /// Bytes moved to/from on-chip SRAM.
    pub sram_bytes: f64,
    /// Bytes moved to/from off-chip DRAM.
    pub dram_bytes: f64,
}

impl TensorAccess {
    fn new(sram_bytes: f64, dram_bytes: f64) -> Self {
        TensorAccess {
            sram_bytes,
            dram_bytes,
        }
    }

    /// Total bytes across both levels.
    pub fn total_bytes(&self) -> f64 {
        self.sram_bytes + self.dram_bytes
    }
}

/// Complete access/compute inventory for one layer instance under one
/// dataflow.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AccessCounts {
    /// Ifmap traffic.
    pub ifmap: TensorAccess,
    /// Weight traffic.
    pub weight: TensorAccess,
    /// PSUM traffic (already scaled by β).
    pub psum: TensorAccess,
    /// Ofmap traffic.
    pub ofmap: TensorAccess,
    /// PSUM register-file bytes (OS only: accumulation happens in PE
    /// registers, 2 accesses per MAC at the PSUM width).
    pub psum_reg_bytes: f64,
    /// MAC operations.
    pub macs: f64,
}

impl AccessCounts {
    /// Sum of all SRAM bytes.
    pub fn sram_bytes(&self) -> f64 {
        self.ifmap.sram_bytes
            + self.weight.sram_bytes
            + self.psum.sram_bytes
            + self.ofmap.sram_bytes
    }

    /// Sum of all DRAM bytes.
    pub fn dram_bytes(&self) -> f64 {
        self.ifmap.dram_bytes
            + self.weight.dram_bytes
            + self.psum.dram_bytes
            + self.ofmap.dram_bytes
    }

    /// Adds another layer's counts (used to fold a workload).
    pub fn accumulate(&mut self, other: &AccessCounts, times: f64) {
        let add = |a: &mut TensorAccess, b: &TensorAccess| {
            a.sram_bytes += b.sram_bytes * times;
            a.dram_bytes += b.dram_bytes * times;
        };
        add(&mut self.ifmap, &other.ifmap);
        add(&mut self.weight, &other.weight);
        add(&mut self.psum, &other.psum);
        add(&mut self.ofmap, &other.ofmap);
        self.psum_reg_bytes += other.psum_reg_bytes * times;
        self.macs += other.macs * times;
    }
}

/// Evaluates the access-count model for one layer instance.
///
/// # Panics
///
/// Panics if the accelerator configuration contains a zero field.
pub fn access_counts(
    layer: &LayerShape,
    arch: &AcceleratorConfig,
    dataflow: Dataflow,
    psum: &PsumFormat,
) -> AccessCounts {
    arch.validate();
    match dataflow {
        Dataflow::InputStationary => is_counts(layer, arch, psum),
        Dataflow::WeightStationary => ws_counts(layer, arch, psum),
        Dataflow::OutputStationary => os_counts(layer, arch, psum),
    }
}

fn ceil_div(a: usize, b: usize) -> f64 {
    a.div_ceil(b) as f64
}

/// Input Stationary — eq (3) for SRAM, eq (4) for DRAM.
fn is_counts(layer: &LayerShape, arch: &AcceleratorConfig, psum: &PsumFormat) -> AccessCounts {
    let si = layer.si_bytes();
    let sw = layer.sw_bytes();
    let so = layer.so_bytes();
    let beta = psum.beta();
    let np = layer.ci.div_ceil(arch.pci) as f64;

    // Input-pixel passes: the stationary tile covers Po pixels of the
    // enlarged ifmap.
    let passes = ceil_div(layer.hi() * layer.wi(), arch.po);

    // Weight residency: eq (3)/(4) check the full weight size against Bw.
    let w_fits = sw <= arch.weight_buffer_bytes as f64;
    let n_w_s = if w_fits { 1.0 + passes } else { 2.0 * passes };
    let n_w_d = if w_fits { 1.0 } else { passes };

    // PSUM working set: (Co/Pco)·S̃p = slots·bits/8 · Po · Co bytes.
    let psum_ws = psum.working_set_bytes_per_element() * (arch.po * layer.co) as f64;
    let p_fits = psum_ws <= arch.ofmap_buffer_bytes as f64;
    let n_p_s = if p_fits {
        2.0 * (np - 1.0)
    } else {
        4.0 * (np - 1.0)
    };
    let n_p_d = if p_fits { 0.0 } else { 2.0 * (np - 1.0) };

    AccessCounts {
        ifmap: TensorAccess::new(si * 2.0, si),
        weight: TensorAccess::new(sw * n_w_s, sw * n_w_d),
        psum: TensorAccess::new(beta * so * n_p_s, beta * so * n_p_d),
        ofmap: TensorAccess::new(so * 2.0, so),
        psum_reg_bytes: 0.0,
        macs: layer.macs(),
    }
}

/// Weight Stationary — eq (5) for SRAM, eq (6) for DRAM.
fn ws_counts(layer: &LayerShape, arch: &AcceleratorConfig, psum: &PsumFormat) -> AccessCounts {
    let si = layer.si_bytes();
    let sw = layer.sw_bytes();
    let so = layer.so_bytes();
    let beta = psum.beta();
    let np = layer.ci.div_ceil(arch.pci) as f64;
    let co_passes = ceil_div(layer.co, arch.pco);

    // Input-tile residency: eq (5) checks the *tile* S̃i — the receptive
    // field of Po output pixels across all Ci — against Bi.
    let si_tile = (layer.ci * ((arch.po - 1) * layer.stride + layer.kh) * layer.kw) as f64;
    let i_fits = si_tile <= arch.ifmap_buffer_bytes as f64;
    let n_i_s = if i_fits {
        1.0 + co_passes
    } else {
        2.0 * co_passes
    };
    let n_i_d = if i_fits { 1.0 } else { co_passes };

    // PSUM working set: (Ho·Wo/Po)·S̃p = slots·bits/8 · Ho·Wo · Pco bytes.
    let psum_ws = psum.working_set_bytes_per_element() * (layer.output_pixels() * arch.pco) as f64;
    let p_fits = psum_ws <= arch.ofmap_buffer_bytes as f64;
    let n_p_s = if p_fits {
        2.0 * (np - 1.0)
    } else {
        4.0 * (np - 1.0)
    };
    let n_p_d = if p_fits { 0.0 } else { 2.0 * (np - 1.0) };

    AccessCounts {
        ifmap: TensorAccess::new(si * n_i_s, si * n_i_d),
        weight: TensorAccess::new(sw * 2.0, sw),
        psum: TensorAccess::new(beta * so * n_p_s, beta * so * n_p_d),
        ofmap: TensorAccess::new(so * 2.0, so),
        psum_reg_bytes: 0.0,
        macs: layer.macs(),
    }
}

/// Output Stationary — derived from ref [16]: PSUMs live in PE registers
/// (no SRAM/DRAM PSUM traffic), at the price of re-streaming the ifmap once
/// per output-channel pass and the weights once per output-pixel pass.
fn os_counts(layer: &LayerShape, arch: &AcceleratorConfig, psum: &PsumFormat) -> AccessCounts {
    let si = layer.si_bytes();
    let sw = layer.sw_bytes();
    let so = layer.so_bytes();
    let co_passes = ceil_div(layer.co, arch.pco);
    let px_passes = ceil_div(layer.output_pixels(), arch.po);

    let i_fits = si <= arch.ifmap_buffer_bytes as f64;
    let n_i_s = if i_fits {
        1.0 + co_passes
    } else {
        2.0 * co_passes
    };
    let n_i_d = if i_fits { 1.0 } else { co_passes };

    let w_fits = sw <= arch.weight_buffer_bytes as f64;
    let n_w_s = if w_fits {
        1.0 + px_passes
    } else {
        2.0 * px_passes
    };
    let n_w_d = if w_fits { 1.0 } else { px_passes };

    // Each MAC updates a PSUM register (read + write) at the PSUM width.
    let psum_reg_bytes = 2.0 * layer.macs() * psum.beta();

    AccessCounts {
        ifmap: TensorAccess::new(si * n_i_s, si * n_i_d),
        weight: TensorAccess::new(sw * n_w_s, sw * n_w_d),
        psum: TensorAccess::default(),
        ofmap: TensorAccess::new(so * 2.0, so),
        psum_reg_bytes,
        macs: layer.macs(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bert_ffn1() -> LayerShape {
        LayerShape::gemm("ffn1", 128, 768, 3072)
    }

    #[test]
    fn ws_bert_ffn1_matches_hand_calculation() {
        let arch = AcceleratorConfig::transformer();
        let c = access_counts(
            &bert_ffn1(),
            &arch,
            Dataflow::WeightStationary,
            &PsumFormat::int32_baseline(),
        );
        // np = 768/8 = 96; PSUM ws = 4·128·8 = 4 KB fits ⇒ N_p_s = 2·95.
        let so = 128.0 * 3072.0;
        assert_eq!(c.psum.sram_bytes, 4.0 * so * 190.0);
        assert_eq!(c.psum.dram_bytes, 0.0);
        // Tile S̃i = 768·16 = 12 KB fits ⇒ N_i_s = 1 + 384.
        let si = 128.0 * 768.0;
        assert_eq!(c.ifmap.sram_bytes, si * 385.0);
        assert_eq!(c.ifmap.dram_bytes, si);
        // Weights move twice through SRAM, once from DRAM.
        let sw = 768.0 * 3072.0;
        assert_eq!(c.weight.sram_bytes, sw * 2.0);
        assert_eq!(c.weight.dram_bytes, sw);
        assert_eq!(c.macs, 128.0 * 768.0 * 3072.0);
    }

    #[test]
    fn is_bert_ffn1_weight_spill() {
        let arch = AcceleratorConfig::transformer();
        let c = access_counts(
            &bert_ffn1(),
            &arch,
            Dataflow::InputStationary,
            &PsumFormat::int32_baseline(),
        );
        // Sw = 2.36 MB ≥ 128 KB ⇒ weights re-fetched per pixel pass
        // (128/16 = 8 passes).
        let sw = 768.0 * 3072.0;
        assert_eq!(c.weight.dram_bytes, sw * 8.0);
        assert_eq!(c.weight.sram_bytes, sw * 16.0);
        // Ifmap touched exactly twice in SRAM, once from DRAM.
        let si = 128.0 * 768.0;
        assert_eq!(c.ifmap.sram_bytes, si * 2.0);
        // PSUM ws = 4·16·3072 = 192 KB ≤ 256 KB ⇒ on-chip.
        assert_eq!(c.psum.dram_bytes, 0.0);
        assert_eq!(c.psum.sram_bytes, 4.0 * 128.0 * 3072.0 * 190.0);
    }

    #[test]
    fn os_has_no_psum_memory_traffic() {
        let arch = AcceleratorConfig::transformer();
        let c = access_counts(
            &bert_ffn1(),
            &arch,
            Dataflow::OutputStationary,
            &PsumFormat::int32_baseline(),
        );
        assert_eq!(c.psum.sram_bytes, 0.0);
        assert_eq!(c.psum.dram_bytes, 0.0);
        assert!(c.psum_reg_bytes > 0.0);
    }

    #[test]
    fn apsq_int8_cuts_psum_traffic_4x() {
        let arch = AcceleratorConfig::transformer();
        let base = access_counts(
            &bert_ffn1(),
            &arch,
            Dataflow::WeightStationary,
            &PsumFormat::int32_baseline(),
        );
        for gs in 1..=4 {
            let apsq = access_counts(
                &bert_ffn1(),
                &arch,
                Dataflow::WeightStationary,
                &PsumFormat::apsq_int8(gs),
            );
            assert_eq!(apsq.psum.sram_bytes * 4.0, base.psum.sram_bytes, "gs={gs}");
        }
    }

    #[test]
    fn large_token_count_spills_psums_at_high_gs() {
        // Segformer-like: 16384 tokens. ws = gs·16384·8 bytes.
        let arch = AcceleratorConfig::transformer();
        let layer = LayerShape::gemm("seg_ffn", 16384, 32, 128);
        // Baseline INT32: ws = 4·16384·8 = 512 KB > 256 KB ⇒ spills.
        let base = access_counts(
            &layer,
            &arch,
            Dataflow::WeightStationary,
            &PsumFormat::int32_baseline(),
        );
        assert!(base.psum.dram_bytes > 0.0);
        // INT8 gs = 2: ws = 2·16384·8 = 256 KB ⇒ exactly fits (≤).
        let gs2 = access_counts(
            &layer,
            &arch,
            Dataflow::WeightStationary,
            &PsumFormat::apsq_int8(2),
        );
        assert_eq!(gs2.psum.dram_bytes, 0.0);
        // INT8 gs = 3: ws = 384 KB ⇒ spills again.
        let gs3 = access_counts(
            &layer,
            &arch,
            Dataflow::WeightStationary,
            &PsumFormat::apsq_int8(3),
        );
        assert!(gs3.psum.dram_bytes > 0.0);
    }

    #[test]
    fn accumulate_with_repeat() {
        let arch = AcceleratorConfig::transformer();
        let c = access_counts(
            &bert_ffn1(),
            &arch,
            Dataflow::WeightStationary,
            &PsumFormat::int32_baseline(),
        );
        let mut total = AccessCounts::default();
        total.accumulate(&c, 12.0);
        assert_eq!(total.macs, c.macs * 12.0);
        assert_eq!(total.psum.sram_bytes, c.psum.sram_bytes * 12.0);
    }
}
