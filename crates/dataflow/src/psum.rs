//! PSUM storage formats: the precision factor β and grouping slots.

/// How partial sums are stored in the ofmap buffer.
///
/// - `storage_bits` sets the paper's precision factor `β = bits / 8`
///   (eq 2): INT32 baseline → β = 4; APSQ INT8 → β = 1; Fig 5 also sweeps
///   INT4 / INT6 (β = 0.5 / 0.75).
/// - `group_slots` is the number of stored entries per output element:
///   1 for conventional accumulation, `gs` for grouped APSQ (Algorithm 1
///   keeps a group of quantized PSUMs resident). Grouping does **not**
///   change traffic — the total word count is invariant — but multiplies
///   the buffer *working set*, which is what pushes high-resolution models
///   into DRAM spills at large `gs` (paper Fig 6b).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PsumFormat {
    /// Bits per stored PSUM entry.
    pub storage_bits: f64,
    /// Stored entries per output element (`gs` for grouped APSQ).
    pub group_slots: usize,
}

impl PsumFormat {
    /// Conventional exact accumulation at the given bit-width (one slot).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not positive.
    pub fn exact(bits: u32) -> Self {
        assert!(bits > 0, "psum bits must be positive");
        PsumFormat {
            storage_bits: bits as f64,
            group_slots: 1,
        }
    }

    /// The INT32 baseline of an integer-only W8A8 accelerator (β = 4).
    pub fn int32_baseline() -> Self {
        Self::exact(32)
    }

    /// Grouped APSQ storage: `bits`-wide entries, `gs` slots per element.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or `gs` is zero.
    pub fn apsq(bits: u32, gs: usize) -> Self {
        assert!(bits > 0, "psum bits must be positive");
        assert!(gs > 0, "group size must be positive");
        PsumFormat {
            storage_bits: bits as f64,
            group_slots: gs,
        }
    }

    /// The paper's operating point: INT8 APSQ with group size `gs`.
    pub fn apsq_int8(gs: usize) -> Self {
        Self::apsq(8, gs)
    }

    /// The precision factor `β` of eq (2): bytes per PSUM *access*.
    pub fn beta(&self) -> f64 {
        self.storage_bits / 8.0
    }

    /// Bytes of buffer residency per output element:
    /// `group_slots · storage_bits / 8`.
    pub fn working_set_bytes_per_element(&self) -> f64 {
        self.group_slots as f64 * self.storage_bits / 8.0
    }
}

impl Default for PsumFormat {
    fn default() -> Self {
        Self::int32_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_beta_is_four() {
        let f = PsumFormat::int32_baseline();
        assert_eq!(f.beta(), 4.0);
        assert_eq!(f.working_set_bytes_per_element(), 4.0);
    }

    #[test]
    fn apsq_int8_traffic_beta_is_one_regardless_of_gs() {
        for gs in 1..=4 {
            let f = PsumFormat::apsq_int8(gs);
            assert_eq!(f.beta(), 1.0);
            assert_eq!(f.working_set_bytes_per_element(), gs as f64);
        }
    }

    #[test]
    fn fractional_beta_for_sub_byte() {
        assert_eq!(PsumFormat::apsq(4, 1).beta(), 0.5);
        assert_eq!(PsumFormat::apsq(6, 2).beta(), 0.75);
        assert_eq!(PsumFormat::apsq(6, 2).working_set_bytes_per_element(), 1.5);
    }

    #[test]
    #[should_panic(expected = "group size")]
    fn zero_gs_rejected() {
        PsumFormat::apsq(8, 0);
    }
}
