//! Layer geometry: the shapes that drive the analytical framework.

use std::fmt;

/// The geometry of one MAC-dominated layer (GEMM, pointwise or spatial
/// convolution, or an attention matmul), in the convolutional coordinates
/// the paper's equations use.
///
/// Transformer GEMMs map onto 1×1 convolutions with `Ho·Wo = tokens`;
/// attention score/context matmuls map per head with `Ci = head_dim` or
/// `Ci = tokens`.
///
/// `repeat` counts identical instances (e.g. 12 encoder layers × 12 heads),
/// so one `LayerShape` can describe a whole family.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct LayerShape {
    /// Human-readable layer name (e.g. `"ffn1"`).
    pub name: String,
    /// Input channels `Ci` (the accumulation/reduction depth).
    pub ci: usize,
    /// Output channels `Co`.
    pub co: usize,
    /// Output height `Ho` (for sequences: the token count).
    pub ho: usize,
    /// Output width `Wo` (1 for sequences).
    pub wo: usize,
    /// Kernel height (1 for GEMM).
    pub kh: usize,
    /// Kernel width (1 for GEMM).
    pub kw: usize,
    /// Stride (1 for GEMM).
    pub stride: usize,
    /// Number of identical instances of this layer in the network.
    pub repeat: usize,
}

impl LayerShape {
    /// A GEMM of `tokens × ci → tokens × co` (a 1×1 convolution over a
    /// `tokens × 1` map).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn gemm(name: impl Into<String>, tokens: usize, ci: usize, co: usize) -> Self {
        let s = LayerShape {
            name: name.into(),
            ci,
            co,
            ho: tokens,
            wo: 1,
            kh: 1,
            kw: 1,
            stride: 1,
            repeat: 1,
        };
        s.validate();
        s
    }

    /// A spatial convolution with square kernel `k` and the given stride.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn conv(
        name: impl Into<String>,
        ho: usize,
        wo: usize,
        ci: usize,
        co: usize,
        k: usize,
        stride: usize,
    ) -> Self {
        let s = LayerShape {
            name: name.into(),
            ci,
            co,
            ho,
            wo,
            kh: k,
            kw: k,
            stride,
            repeat: 1,
        };
        s.validate();
        s
    }

    /// Returns the same shape repeated `n` times.
    pub fn with_repeat(mut self, n: usize) -> Self {
        assert!(n > 0, "repeat must be positive");
        self.repeat = n;
        self
    }

    fn validate(&self) {
        assert!(
            self.ci > 0
                && self.co > 0
                && self.ho > 0
                && self.wo > 0
                && self.kh > 0
                && self.kw > 0
                && self.stride > 0
                && self.repeat > 0,
            "layer {:?} has a zero dimension",
            self.name
        );
    }

    /// Input (enlarged ifmap) height `Hi = (Ho−1)·stride + Kh`.
    pub fn hi(&self) -> usize {
        (self.ho - 1) * self.stride + self.kh
    }

    /// Input (enlarged ifmap) width `Wi = (Wo−1)·stride + Kw`.
    pub fn wi(&self) -> usize {
        (self.wo - 1) * self.stride + self.kw
    }

    /// Ifmap size `Si` in INT8 bytes (`Ci·Hi·Wi`).
    pub fn si_bytes(&self) -> f64 {
        (self.ci * self.hi() * self.wi()) as f64
    }

    /// Weight size `Sw` in INT8 bytes (`Ci·Co·Kh·Kw`).
    pub fn sw_bytes(&self) -> f64 {
        (self.ci * self.co * self.kh * self.kw) as f64
    }

    /// Ofmap size `So` in INT8 bytes (`Co·Ho·Wo`).
    pub fn so_bytes(&self) -> f64 {
        (self.co * self.ho * self.wo) as f64
    }

    /// Total MAC count (`Ci·Co·Ho·Wo·Kh·Kw`), for one instance.
    pub fn macs(&self) -> f64 {
        (self.ci * self.kh * self.kw) as f64 * (self.co * self.ho * self.wo) as f64
    }

    /// Output pixels `Ho·Wo` (token count for sequences).
    pub fn output_pixels(&self) -> usize {
        self.ho * self.wo
    }
}

impl fmt::Display for LayerShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}x{} Ci={} Co={} k={}x{}/{}{}",
            self.name,
            self.ho,
            self.wo,
            self.ci,
            self.co,
            self.kh,
            self.kw,
            self.stride,
            if self.repeat > 1 {
                format!(" ×{}", self.repeat)
            } else {
                String::new()
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_shape() {
        let l = LayerShape::gemm("ffn1", 128, 768, 3072);
        assert_eq!(l.hi(), 128);
        assert_eq!(l.wi(), 1);
        assert_eq!(l.si_bytes(), 128.0 * 768.0);
        assert_eq!(l.sw_bytes(), 768.0 * 3072.0);
        assert_eq!(l.so_bytes(), 128.0 * 3072.0);
        assert_eq!(l.macs(), 768.0 * 3072.0 * 128.0);
    }

    #[test]
    fn conv_enlarged_input() {
        let l = LayerShape::conv("stem", 64, 64, 3, 32, 3, 2);
        assert_eq!(l.hi(), 63 * 2 + 3);
        assert_eq!(l.macs(), (3 * 3 * 3) as f64 * (32 * 64 * 64) as f64);
    }

    #[test]
    fn repeat_multiplies() {
        let l = LayerShape::gemm("qkv", 128, 768, 768).with_repeat(12);
        assert_eq!(l.repeat, 12);
    }

    #[test]
    #[should_panic(expected = "zero dimension")]
    fn zero_dim_rejected() {
        LayerShape::gemm("bad", 0, 1, 1);
    }
}
