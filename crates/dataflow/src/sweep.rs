//! Design-space sweep utilities: where do the PSUM-residency crossovers
//! fall as buffer capacity, group size, and precision vary?
//!
//! These drive the co-design analyses behind Fig 6b and Table IV — the
//! energy cliffs appear exactly where `gs · bits/8 · working-set elements`
//! crosses the ofmap buffer capacity.

use crate::access::access_counts;
use crate::arch::AcceleratorConfig;
use crate::dataflow::Dataflow;
use crate::energy::{energy_breakdown, EnergyTable};
use crate::framework::{workload_energy, Workload};
use crate::layer::LayerShape;
use crate::psum::PsumFormat;

/// One point of a buffer-capacity sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BufferSweepPoint {
    /// Ofmap/PSUM buffer capacity in bytes.
    pub ofmap_buffer_bytes: usize,
    /// Normalized energy (vs the INT32 baseline at the same capacity).
    pub normalized_energy: f64,
    /// Whether any layer spilled PSUMs to DRAM at this capacity.
    pub spills: bool,
}

/// Sweeps the ofmap buffer capacity for a fixed PSUM format, reporting the
/// normalized energy and spill state at each size.
///
/// # Panics
///
/// Panics if `capacities` is empty.
pub fn sweep_ofmap_buffer(
    workload: &Workload,
    base_arch: &AcceleratorConfig,
    dataflow: Dataflow,
    format: &PsumFormat,
    table: &EnergyTable,
    capacities: &[usize],
) -> Vec<BufferSweepPoint> {
    assert!(!capacities.is_empty(), "no capacities to sweep");
    capacities
        .iter()
        .map(|&cap| {
            let arch = AcceleratorConfig {
                ofmap_buffer_bytes: cap,
                ..*base_arch
            };
            let e = workload_energy(workload, &arch, dataflow, format, table).total();
            let b = workload_energy(
                workload,
                &arch,
                dataflow,
                &PsumFormat::int32_baseline(),
                table,
            )
            .total();
            let spills = workload
                .layers
                .iter()
                .any(|l| access_counts(l, &arch, dataflow, format).psum.dram_bytes > 0.0);
            BufferSweepPoint {
                ofmap_buffer_bytes: cap,
                normalized_energy: e / b,
                spills,
            }
        })
        .collect()
}

/// The largest group size whose PSUM working set still fits on-chip for
/// every layer of the workload (`None` if even `gs = 1` spills somewhere).
pub fn max_resident_group_size(
    workload: &Workload,
    arch: &AcceleratorConfig,
    dataflow: Dataflow,
    bits: u32,
    limit: usize,
) -> Option<usize> {
    (1..=limit)
        .take_while(|&gs| {
            workload.layers.iter().all(|l| {
                access_counts(l, arch, dataflow, &PsumFormat::apsq(bits, gs))
                    .psum
                    .dram_bytes
                    == 0.0
            })
        })
        .last()
}

/// Per-layer energy attribution: which layers dominate a workload's energy
/// under a given configuration? Returns `(layer name, total pJ incl.
/// repeats)` sorted descending.
pub fn energy_hotspots(
    workload: &Workload,
    arch: &AcceleratorConfig,
    dataflow: Dataflow,
    format: &PsumFormat,
    table: &EnergyTable,
) -> Vec<(String, f64)> {
    let mut rows: Vec<(String, f64)> = workload
        .layers
        .iter()
        .map(|l| {
            let e = energy_breakdown(&access_counts(l, arch, dataflow, format), table).total()
                * l.repeat as f64;
            (l.name.clone(), e)
        })
        .collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    rows
}

/// The minimum ofmap-buffer capacity (bytes) at which a layer's PSUM
/// working set becomes resident for the format, under the dataflow's
/// working-set rule.
pub fn residency_threshold_bytes(
    layer: &LayerShape,
    arch: &AcceleratorConfig,
    dataflow: Dataflow,
    format: &PsumFormat,
) -> f64 {
    let per_elem = format.working_set_bytes_per_element();
    match dataflow {
        Dataflow::InputStationary => per_elem * (arch.po * layer.co) as f64,
        Dataflow::WeightStationary => per_elem * (layer.output_pixels() * arch.pco) as f64,
        Dataflow::OutputStationary => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg_like() -> Workload {
        Workload::new("seg", vec![LayerShape::gemm("big", 16384, 32, 128)])
    }

    #[test]
    fn buffer_sweep_finds_the_cliff() {
        let w = seg_like();
        let arch = AcceleratorConfig::transformer();
        let table = EnergyTable::default_28nm();
        // gs=3 INT8 working set = 3·16384·8 = 384 KB.
        let pts = sweep_ofmap_buffer(
            &w,
            &arch,
            Dataflow::WeightStationary,
            &PsumFormat::apsq_int8(3),
            &table,
            &[256 * 1024, 384 * 1024, 512 * 1024],
        );
        assert!(pts[0].spills, "256 KB must spill");
        assert!(!pts[1].spills, "384 KB must fit (boundary-inclusive)");
        assert!(!pts[2].spills);
        assert!(pts[0].normalized_energy > pts[1].normalized_energy);
    }

    #[test]
    fn max_resident_gs_matches_hand_calculation() {
        // 16384 tokens × Pco 8 × 1 B = 128 KB per slot; 256 KB buffer ⇒
        // two slots fit.
        let w = seg_like();
        let arch = AcceleratorConfig::transformer();
        assert_eq!(
            max_resident_group_size(&w, &arch, Dataflow::WeightStationary, 8, 8),
            Some(2)
        );
    }

    #[test]
    fn max_resident_gs_none_when_even_gs1_spills() {
        let w = Workload::new("huge", vec![LayerShape::gemm("x", 1 << 20, 32, 128)]);
        let arch = AcceleratorConfig::transformer();
        assert_eq!(
            max_resident_group_size(&w, &arch, Dataflow::WeightStationary, 8, 4),
            None
        );
    }

    #[test]
    fn hotspots_sorted_descending() {
        let w = Workload::new(
            "two",
            vec![
                LayerShape::gemm("small", 16, 64, 64),
                LayerShape::gemm("large", 4096, 512, 512),
            ],
        );
        let arch = AcceleratorConfig::transformer();
        let table = EnergyTable::default_28nm();
        let h = energy_hotspots(
            &w,
            &arch,
            Dataflow::WeightStationary,
            &PsumFormat::int32_baseline(),
            &table,
        );
        assert_eq!(h[0].0, "large");
        assert!(h[0].1 > h[1].1);
    }

    #[test]
    fn residency_threshold_formulas() {
        let l = LayerShape::gemm("x", 100, 64, 200);
        let arch = AcceleratorConfig::transformer();
        let f = PsumFormat::apsq_int8(2);
        assert_eq!(
            residency_threshold_bytes(&l, &arch, Dataflow::InputStationary, &f),
            2.0 * (16 * 200) as f64
        );
        assert_eq!(
            residency_threshold_bytes(&l, &arch, Dataflow::WeightStationary, &f),
            2.0 * (100 * 8) as f64
        );
        assert_eq!(
            residency_threshold_bytes(&l, &arch, Dataflow::OutputStationary, &f),
            0.0
        );
    }
}
