//! Workload-level evaluation: fold per-layer access counts and energies
//! over a whole network (eq 1 + eq 2 applied layer by layer).

use crate::access::{access_counts, AccessCounts};
use crate::arch::AcceleratorConfig;
use crate::dataflow::Dataflow;
use crate::energy::{energy_breakdown, EnergyBreakdown, EnergyTable};
use crate::layer::LayerShape;
use crate::psum::PsumFormat;

/// A named list of layers forming one network workload.
#[derive(Clone, Debug, PartialEq)]
pub struct Workload {
    /// Display name (e.g. `"BERT-Base (128 tokens)"`).
    pub name: String,
    /// The layers; each carries its own `repeat` multiplicity.
    pub layers: Vec<LayerShape>,
}

impl Workload {
    /// Creates a workload.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    pub fn new(name: impl Into<String>, layers: Vec<LayerShape>) -> Self {
        assert!(!layers.is_empty(), "a workload needs at least one layer");
        Workload {
            name: name.into(),
            layers,
        }
    }

    /// Total MAC count across all layers and repeats.
    pub fn total_macs(&self) -> f64 {
        self.layers.iter().map(|l| l.macs() * l.repeat as f64).sum()
    }

    /// Total weight bytes (model size at INT8).
    pub fn total_weight_bytes(&self) -> f64 {
        self.layers
            .iter()
            .map(|l| l.sw_bytes() * l.repeat as f64)
            .sum()
    }
}

/// Folds access counts over a workload.
pub fn workload_access_counts(
    workload: &Workload,
    arch: &AcceleratorConfig,
    dataflow: Dataflow,
    psum: &PsumFormat,
) -> AccessCounts {
    let mut total = AccessCounts::default();
    for layer in &workload.layers {
        let c = access_counts(layer, arch, dataflow, psum);
        total.accumulate(&c, layer.repeat as f64);
    }
    total
}

/// Folds the energy breakdown over a workload (eq 1).
pub fn workload_energy(
    workload: &Workload,
    arch: &AcceleratorConfig,
    dataflow: Dataflow,
    psum: &PsumFormat,
    table: &EnergyTable,
) -> EnergyBreakdown {
    let counts = workload_access_counts(workload, arch, dataflow, psum);
    energy_breakdown(&counts, table)
}

/// Energy of `psum` normalized to the energy of `baseline` for the same
/// workload/dataflow (the y-axes of Figs 5 and 6 and the ratios of
/// Table IV).
pub fn normalized_energy(
    workload: &Workload,
    arch: &AcceleratorConfig,
    dataflow: Dataflow,
    psum: &PsumFormat,
    baseline: &PsumFormat,
    table: &EnergyTable,
) -> f64 {
    let e = workload_energy(workload, arch, dataflow, psum, table).total();
    let b = workload_energy(workload, arch, dataflow, baseline, table).total();
    e / b
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_workload() -> Workload {
        Workload::new(
            "tiny",
            vec![
                LayerShape::gemm("a", 128, 768, 3072),
                LayerShape::gemm("b", 128, 3072, 768).with_repeat(2),
            ],
        )
    }

    #[test]
    fn totals() {
        let w = tiny_workload();
        assert_eq!(
            w.total_macs(),
            128.0 * 768.0 * 3072.0 + 2.0 * 128.0 * 3072.0 * 768.0
        );
        assert_eq!(
            w.total_weight_bytes(),
            768.0 * 3072.0 + 2.0 * 3072.0 * 768.0
        );
    }

    #[test]
    fn apsq_reduces_ws_energy() {
        let w = tiny_workload();
        let arch = AcceleratorConfig::transformer();
        let t = EnergyTable::default_28nm();
        let r = normalized_energy(
            &w,
            &arch,
            Dataflow::WeightStationary,
            &PsumFormat::apsq_int8(1),
            &PsumFormat::int32_baseline(),
            &t,
        );
        assert!(r < 0.8, "expected large WS saving, got {r}");
        assert!(r > 0.2, "saving implausibly large: {r}");
    }

    #[test]
    fn os_insensitive_to_psum_storage_bits_in_memory_terms() {
        let w = tiny_workload();
        let arch = AcceleratorConfig::transformer();
        let t = EnergyTable::default_28nm();
        let e32 = workload_energy(
            &w,
            &arch,
            Dataflow::OutputStationary,
            &PsumFormat::int32_baseline(),
            &t,
        );
        let e8 = workload_energy(
            &w,
            &arch,
            Dataflow::OutputStationary,
            &PsumFormat::apsq_int8(1),
            &t,
        );
        // Only the register term moves; memory terms are identical.
        assert_eq!(e32.ifmap, e8.ifmap);
        assert_eq!(e32.weight, e8.weight);
        assert_eq!(e32.ofmap, e8.ofmap);
        assert!(e32.psum > e8.psum);
    }

    #[test]
    fn mac_energy_constant_across_formats() {
        let w = tiny_workload();
        let arch = AcceleratorConfig::transformer();
        let t = EnergyTable::default_28nm();
        let a = workload_energy(
            &w,
            &arch,
            Dataflow::WeightStationary,
            &PsumFormat::int32_baseline(),
            &t,
        );
        let b = workload_energy(
            &w,
            &arch,
            Dataflow::WeightStationary,
            &PsumFormat::apsq_int8(4),
            &t,
        );
        assert_eq!(a.op, b.op);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_workload_rejected() {
        Workload::new("empty", vec![]);
    }
}
