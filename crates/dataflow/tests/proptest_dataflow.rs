//! Property-based tests of the analytical access-count/energy model.

use apsq_dataflow::{
    access_counts, energy_breakdown, AcceleratorConfig, Dataflow, EnergyTable, LayerShape,
    PsumFormat,
};
use proptest::prelude::*;

fn arch_strategy() -> impl Strategy<Value = AcceleratorConfig> {
    (1usize..5, 1usize..5, 1usize..5, 10usize..18).prop_map(|(po, pci, pco, logbuf)| {
        AcceleratorConfig {
            po: 1 << po,
            pci: 1 << pci,
            pco: 1 << pco,
            ifmap_buffer_bytes: 1 << logbuf,
            ofmap_buffer_bytes: 1 << logbuf,
            weight_buffer_bytes: 1 << (logbuf - 1),
        }
    })
}

fn layer_strategy() -> impl Strategy<Value = LayerShape> {
    (1usize..2048, 1usize..2048, 1usize..2048)
        .prop_map(|(t, ci, co)| LayerShape::gemm("l", t, ci, co))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// PSUM traffic scales exactly linearly with β when residency class
    /// is unchanged (compare INT32 vs INT16 exact storage, both spilled or
    /// both resident by construction of the same working-set class).
    #[test]
    fn psum_traffic_linear_in_beta_within_residency(
        layer in layer_strategy(),
        arch in arch_strategy(),
        df in prop_oneof![Just(Dataflow::InputStationary), Just(Dataflow::WeightStationary)],
    ) {
        let c32 = access_counts(&layer, &arch, df, &PsumFormat::exact(32));
        let c16 = access_counts(&layer, &arch, df, &PsumFormat::exact(16));
        // Residency can differ (16-bit set is half the size); only compare
        // when both are resident or both spilled.
        let spilled32 = c32.psum.dram_bytes > 0.0;
        let spilled16 = c16.psum.dram_bytes > 0.0;
        if spilled32 == spilled16 {
            prop_assert!((c32.psum.sram_bytes - 2.0 * c16.psum.sram_bytes).abs() < 1e-6);
        } else {
            // The smaller format can only move *out* of the spilled class.
            prop_assert!(spilled32 && !spilled16);
        }
    }

    /// OS never touches memory for PSUMs.
    #[test]
    fn os_psum_memory_free(layer in layer_strategy(), arch in arch_strategy()) {
        let c = access_counts(&layer, &arch, Dataflow::OutputStationary, &PsumFormat::exact(32));
        prop_assert_eq!(c.psum.sram_bytes, 0.0);
        prop_assert_eq!(c.psum.dram_bytes, 0.0);
        prop_assert!(c.psum_reg_bytes > 0.0);
    }

    /// Total energy is monotone non-decreasing in PSUM storage bits for
    /// IS/WS (more bytes moved, potentially more spills).
    #[test]
    fn energy_monotone_in_psum_bits(
        layer in layer_strategy(),
        arch in arch_strategy(),
        df in prop_oneof![Just(Dataflow::InputStationary), Just(Dataflow::WeightStationary)],
    ) {
        let table = EnergyTable::default_28nm();
        let mut last = 0.0;
        for bits in [8u32, 16, 32] {
            let e = energy_breakdown(
                &access_counts(&layer, &arch, df, &PsumFormat::exact(bits)),
                &table,
            )
            .total();
            prop_assert!(e >= last, "bits={bits}: {e} < {last}");
            last = e;
        }
    }

    /// Group slots never change traffic, only the working set: traffic at
    /// gs=1 equals traffic at gs=4 unless the residency class changed.
    #[test]
    fn group_slots_traffic_invariant_or_spill(
        layer in layer_strategy(),
        arch in arch_strategy(),
        df in prop_oneof![Just(Dataflow::InputStationary), Just(Dataflow::WeightStationary)],
    ) {
        let c1 = access_counts(&layer, &arch, df, &PsumFormat::apsq_int8(1));
        let c4 = access_counts(&layer, &arch, df, &PsumFormat::apsq_int8(4));
        let spilled1 = c1.psum.dram_bytes > 0.0;
        let spilled4 = c4.psum.dram_bytes > 0.0;
        if spilled1 == spilled4 {
            prop_assert_eq!(c1.psum.sram_bytes, c4.psum.sram_bytes);
            prop_assert_eq!(c1.psum.dram_bytes, c4.psum.dram_bytes);
        } else {
            // More slots can only move *into* the spilled class.
            prop_assert!(spilled4 && !spilled1);
            prop_assert!(c4.psum.sram_bytes > c1.psum.sram_bytes);
        }
        // Non-PSUM tensors are untouched by the PSUM format.
        prop_assert_eq!(c1.ifmap, c4.ifmap);
        prop_assert_eq!(c1.weight, c4.weight);
        prop_assert_eq!(c1.ofmap, c4.ofmap);
        prop_assert_eq!(c1.macs, c4.macs);
    }

    /// MAC count is the exact layer arithmetic regardless of dataflow.
    #[test]
    fn macs_independent_of_dataflow(layer in layer_strategy(), arch in arch_strategy()) {
        let fmt = PsumFormat::int32_baseline();
        let a = access_counts(&layer, &arch, Dataflow::InputStationary, &fmt).macs;
        let b = access_counts(&layer, &arch, Dataflow::WeightStationary, &fmt).macs;
        let c = access_counts(&layer, &arch, Dataflow::OutputStationary, &fmt).macs;
        prop_assert_eq!(a, layer.macs());
        prop_assert_eq!(b, layer.macs());
        prop_assert_eq!(c, layer.macs());
    }
}
