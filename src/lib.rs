//! # APSQ: Additive Partial Sum Quantization — full-system reproduction
//!
//! This crate re-exports the whole APSQ workspace behind one façade:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `apsq-core` | the APSQ recursion (eq 10), grouping strategy (Algorithm 1), PSQ/exact baselines, SQNR analysis |
//! | [`quant`] | `apsq-quant` | uniform / LSQ / power-of-two quantizers, saturating fixed-point primitives |
//! | [`tensor`] | `apsq-tensor` | dense f32/int tensors, K-tiled matmul exposing PSUM streams |
//! | [`dataflow`] | `apsq-dataflow` | the PSUM-precision-aware analytical energy framework (eqs 1–6) |
//! | [`rae`] | `apsq-rae` | bit-accurate Reconfigurable APSQ Engine simulator + 28 nm area model |
//! | [`accel`] | `apsq-accel` | IS/WS loop-nest accelerator simulator with byte-accurate traffic counting |
//! | [`nn`] | `apsq-nn` | transformer layers with manual backprop, W8A8 QAT with the APSQ PSUM path, synthetic tasks, and the `Int8*` integer inference datapath + PTQ conversion |
//! | [`models`] | `apsq-models` | BERT / Segformer / EfficientViT / LLaMA2-7B workload inventories, runnable at f32 or int8+APSQ precision |
//! | [`serve`] | `apsq-serve` | dynamic-batching inference server: request queue, prefill/decode lanes, KV-cache sessions, metrics, load generator |
//! | [`mod@bench`] | `apsq-bench` | experiment drivers, table/JSON report emitters, serve-report rendering |
//!
//! ## Quick start
//!
//! Quantize a PSUM stream with grouped APSQ and compare against exact
//! accumulation:
//!
//! ```
//! use apsq::core::{error_vs_group_size, synthetic_psum_stream};
//! use apsq::quant::Bitwidth;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let stream = synthetic_psum_stream(&mut rng, 16, 128, 8);
//! for point in error_vs_group_size(&stream, Bitwidth::INT8, &[1, 2, 3, 4]) {
//!     println!("gs={}: SQNR {:.1} dB", point.group_size, point.sqnr_db);
//! }
//! ```
//!
//! Estimate the energy saving of INT8 APSQ on BERT-Base under the
//! weight-stationary dataflow (the paper's Fig 6b):
//!
//! ```
//! use apsq::dataflow::{
//!     normalized_energy, AcceleratorConfig, Dataflow, EnergyTable, PsumFormat,
//! };
//! use apsq::models::bert_base_128;
//!
//! let r = normalized_energy(
//!     &bert_base_128(),
//!     &AcceleratorConfig::transformer(),
//!     Dataflow::WeightStationary,
//!     &PsumFormat::apsq_int8(1),
//!     &PsumFormat::int32_baseline(),
//!     &EnergyTable::default_28nm(),
//! );
//! assert!(r < 0.6); // ≈ 50% saving, as the paper reports
//! ```
//!
//! Serve closed-loop decode traffic through the dynamic-batching server
//! and read back the metrics:
//!
//! ```
//! use apsq::serve::{LoadGenerator, Scenario, ServeConfig};
//!
//! let report = LoadGenerator::new(7, Scenario::llama_decode(4, 4))
//!     .run(&ServeConfig::smoke());
//! assert_eq!(report.ok, 16);
//! assert!(report.snapshot.tokens_per_s > 0.0);
//! ```

#![deny(unsafe_code)]

pub use apsq_accel as accel;
pub use apsq_bench as bench;
pub use apsq_core as core;
pub use apsq_dataflow as dataflow;
pub use apsq_models as models;
pub use apsq_nn as nn;
pub use apsq_quant as quant;
pub use apsq_rae as rae;
pub use apsq_serve as serve;
pub use apsq_tensor as tensor;
