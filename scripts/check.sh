#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml — run before pushing.
# Any command failing fails the script, exactly like the CI gate.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings -W clippy::undocumented_unsafe_blocks"
cargo clippy --workspace --all-targets -- -D warnings -W clippy::undocumented_unsafe_blocks

echo "==> apsq-lint: fixture suite + repo-invariant walk"
cargo test -q --release -p apsq-lint
cargo run -p apsq-lint --release

echo "==> cargo doc --workspace --no-deps  (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo build --examples"
cargo build --examples

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo test -q --release -p apsq-nn --lib  (release-gated QAT tests)"
cargo test -q --release -p apsq-nn --lib

echo "==> cargo test -q --release -p apsq-nn --test proptest_int8  (int8 == fake-quant bit-identity)"
cargo test -q --release -p apsq-nn --test proptest_int8

echo "==> cargo test -q --release -p apsq-tensor  (engine kernels at release opt)"
cargo test -q --release -p apsq-tensor

echo "==> overflow-checked release: tensor kernels + int8 datapath wrap loudly"
RUSTFLAGS="-C overflow-checks" cargo test -q --release -p apsq-tensor
RUSTFLAGS="-C overflow-checks" cargo test -q --release -p apsq-nn --test proptest_int8
RUSTFLAGS="-C overflow-checks" cargo test -q --release -p apsq-nn --lib int8

echo "==> scalar-forced backend: tensor + int8 suites on the portable fallback"
APSQ_KERNEL_BACKEND=scalar cargo test -q --release -p apsq-tensor
APSQ_KERNEL_BACKEND=scalar cargo test -q --release -p apsq-nn --test proptest_int8
APSQ_KERNEL_BACKEND=scalar cargo test -q --release -p apsq-nn --lib int8

echo "==> cargo test -q --release -p apsq-serve  (server + determinism suite at release opt)"
cargo test -q --release -p apsq-serve

echo "==> block-pool contention: stress + determinism at 8 workers, overflow-checked"
RUSTFLAGS="-C overflow-checks" APSQ_STRESS_WORKERS=8 cargo test -q --release -p apsq-serve --test stress_concurrent
RUSTFLAGS="-C overflow-checks" APSQ_STRESS_WORKERS=8 cargo test -q --release -p apsq-serve --test determinism
RUSTFLAGS="-C overflow-checks" cargo test -q --release -p apsq-nn --lib paged
RUSTFLAGS="-C overflow-checks" cargo test -q --release -p apsq-nn --test proptest_paged

echo "==> cargo test -q --release -p apsq-serve --test overload  (SLO sheds + degradation ladder)"
cargo test -q --release -p apsq-serve --test overload

echo "==> bench smoke: engine_speedup --quick (writes BENCH_matmul.json)"
cargo run -q --release -p apsq-bench --bin engine_speedup -- --quick --out target/BENCH_matmul.smoke.json

echo "==> bench smoke: serve_bench --quick (writes BENCH_serve.json)"
cargo run -q --release -p apsq-bench --bin serve_bench -- --quick --out target/BENCH_serve.smoke.json

echo "==> bench smoke: overload_bench --quick (open-loop SLO sweep + knee/accounting asserts)"
cargo run -q --release -p apsq-bench --bin overload_bench -- --quick --out target/BENCH_overload.smoke.json

echo "==> bench smoke: quant_bench --quick (writes BENCH_quant.json)"
cargo run -q --release -p apsq-bench --bin quant_bench -- --quick --out target/BENCH_quant.smoke.json

echo "==> serve example smoke (with the overload burst demo)"
cargo run -q --release --example serve_traffic -- --quick --overload

echo "All checks passed."
