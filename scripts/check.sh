#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml — run before pushing.
# Any command failing fails the script, exactly like the CI gate.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo build --examples"
cargo build --examples

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo test -q --release -p apsq-nn --lib  (release-gated QAT tests)"
cargo test -q --release -p apsq-nn --lib

echo "==> cargo test -q --release -p apsq-tensor  (engine kernels at release opt)"
cargo test -q --release -p apsq-tensor

echo "==> bench smoke: engine_speedup --quick (writes BENCH_matmul.json)"
cargo run -q --release -p apsq-bench --bin engine_speedup -- --quick --out target/BENCH_matmul.smoke.json

echo "All checks passed."
