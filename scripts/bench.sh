#!/usr/bin/env bash
# Runs the matmul benches, the serving load benchmark, the f32-vs-
# int8+APSQ precision benchmark, and the open-loop overload sweep,
# recording all four as machine-readable JSON (BENCH_matmul.json /
# BENCH_serve.json / BENCH_quant.json / BENCH_overload.json at the repo
# root) through the shared report emitter.
#
#   ./scripts/bench.sh            # full run: 1024^3 engine sweep + 16x48 serve load
#   ./scripts/bench.sh --quick    # CI smoke: 256^3 + 8x8 serve load
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo bench -p apsq-bench --bench matmul"
cargo bench -p apsq-bench --bench matmul

echo
echo "==> engine_speedup ${1:-} (writes BENCH_matmul.json)"
if [[ "${1:-}" == "--quick" ]]; then
  cargo run -q --release -p apsq-bench --bin engine_speedup -- --quick
else
  cargo run -q --release -p apsq-bench --bin engine_speedup
fi

echo
echo "==> serve_bench ${1:-} (writes BENCH_serve.json, incl. the 1/2/4-worker continuous-vs-barrier sweep + allocator contention stats)"
if [[ "${1:-}" == "--quick" ]]; then
  cargo run -q --release -p apsq-bench --bin serve_bench -- --quick
else
  cargo run -q --release -p apsq-bench --bin serve_bench
fi

echo
echo "==> quant_bench ${1:-} (writes BENCH_quant.json)"
if [[ "${1:-}" == "--quick" ]]; then
  cargo run -q --release -p apsq-bench --bin quant_bench -- --quick
else
  cargo run -q --release -p apsq-bench --bin quant_bench
fi

echo
echo "==> overload_bench ${1:-} (writes BENCH_overload.json)"
if [[ "${1:-}" == "--quick" ]]; then
  cargo run -q --release -p apsq-bench --bin overload_bench -- --quick
else
  cargo run -q --release -p apsq-bench --bin overload_bench
fi
