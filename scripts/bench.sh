#!/usr/bin/env bash
# Runs the matmul benches and records the ExecEngine speedup as
# machine-readable JSON (BENCH_matmul.json at the repo root).
#
#   ./scripts/bench.sh            # full run: 1024^3 engine sweep
#   ./scripts/bench.sh --quick    # CI smoke: 256^3
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo bench -p apsq-bench --bench matmul"
cargo bench -p apsq-bench --bench matmul

echo
echo "==> engine_speedup ${1:-} (writes BENCH_matmul.json)"
if [[ "${1:-}" == "--quick" ]]; then
  cargo run -q --release -p apsq-bench --bin engine_speedup -- --quick
else
  cargo run -q --release -p apsq-bench --bin engine_speedup
fi
